//! The paper's Figure 1: the one-agent mixed-action counterexample.
//!
//! A single agent `i` at a single initial state `g0` performs a mixed action
//! step at time 0: action `α` with probability ½ and `α′ ≠ α` otherwise.
//! The resulting pps has two runs and powers *both* counterexamples of the
//! paper:
//!
//! * **§4 (sufficiency fails without independence)**: for
//!   `ψ = ¬does_i(α)`, the agent's belief in `ψ` is ½ whenever it performs
//!   `α`, yet `µ(ψ@α | α) = 0`.
//! * **§6 (the expectation equality fails without independence)**: for
//!   `ϕ = does_i(α)`, `µ(ϕ@α | α) = 1` yet `E[β_i(ϕ)@α | α] = ½`.
//!
//! The construction has a DSL twin, [`crate::dsl_twins::FIGURE1_TWIN`],
//! carrying a proof obligation: the compiled program must unfold
//! bit-identically to [`Figure1Model`] (discharged by
//! `tests/dsl_differential.rs`).

use pak_core::fact::{DoesFact, NotFact};
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::model::ProtocolModel;

/// The single agent `i` of the construction.
pub const AGENT_I: AgentId = AgentId(0);
/// The action `α`.
pub const ALPHA: ActionId = ActionId(0);
/// The alternative action `α′`.
pub const ALPHA_PRIME: ActionId = ActionId(1);

/// Builds the Figure 1 pps, generically over the probability type.
///
/// The local data after the step (1 after `α`, 2 after `α′`) lets the agent
/// observe which action was taken *after* the fact, exactly as in a real
/// mixed step: at decision time the agent does not yet know the outcome.
///
/// # Examples
///
/// ```
/// use pak_systems::figure1::{figure1, AGENT_I, ALPHA};
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let pps = figure1::<Rational>();
/// assert_eq!(pps.num_runs(), 2);
/// assert!(pps.is_proper(AGENT_I, ALPHA));
/// ```
#[must_use]
pub fn figure1<P: Probability>() -> Pps<SimpleState, P> {
    let mut b = PpsBuilder::<SimpleState, P>::new(1);
    let half = P::from_ratio(1, 2);
    let g0 = b
        .initial(SimpleState::new(0, vec![0]), P::one())
        .expect("valid prior");
    b.child(
        g0,
        SimpleState::new(0, vec![1]),
        half.clone(),
        &[(AGENT_I, ALPHA)],
    )
    .expect("valid transition");
    b.child(
        g0,
        SimpleState::new(0, vec![2]),
        half,
        &[(AGENT_I, ALPHA_PRIME)],
    )
    .expect("valid transition");
    let mut pps = b.build().expect("Figure 1 is a valid pps");
    pps.set_action_name(ALPHA, "α");
    pps.set_action_name(ALPHA_PRIME, "α′");
    pps
}

/// The Figure 1 construction as a
/// [`ProtocolModel`]: one agent, one initial state, a mixed `α`/`α′` step
/// at time 0 whose outcome is revealed in the agent's local data (1 after
/// `α`, 2 after `α′`) — the protocol-level twin of the hand-built
/// [`figure1`] tree, which it unfolds to exactly (proved by
/// `tests/systems_unfold_smoke.rs`).
///
/// The transition genuinely depends on the joint move (the environment
/// records which action was drawn) — the workspace's minimal model with a
/// move-dependent environment. A table model expresses the same
/// dependence with guarded state-transition rules
/// ([`pak_protocol::model::StateTransition`]); the DSL twin
/// [`crate::dsl_twins::FIGURE1_TWIN`] does exactly that and unfolds
/// bit-identically to this model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Figure1Model;

impl<P: Probability> ProtocolModel<P> for Figure1Model {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        1
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        vec![(SimpleState::new(0, vec![0]), P::one())]
    }

    fn is_terminal(&self, _state: &SimpleState, time: Time) -> bool {
        time >= 1
    }

    fn moves(&self, _agent: AgentId, _local: &u64, _time: Time) -> Vec<(Self::Move, P)> {
        let half = P::from_ratio(1, 2);
        vec![(Some(ALPHA), half.clone()), (Some(ALPHA_PRIME), half)]
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        _state: &SimpleState,
        moves: &[Self::Move],
        _time: Time,
    ) -> Vec<(SimpleState, P)> {
        let local = if moves[0] == Some(ALPHA) { 1 } else { 2 };
        vec![(SimpleState::new(0, vec![local]), P::one())]
    }

    fn moves_into(
        &self,
        _agent: AgentId,
        _local: &u64,
        _time: Time,
        out: &mut Vec<(Self::Move, P)>,
    ) {
        let half = P::from_ratio(1, 2);
        out.push((Some(ALPHA), half.clone()));
        out.push((Some(ALPHA_PRIME), half));
    }

    fn transition_into(
        &self,
        _state: &SimpleState,
        moves: &[Self::Move],
        _time: Time,
        out: &mut Vec<(SimpleState, P)>,
    ) {
        let local = if moves[0] == Some(ALPHA) { 1 } else { 2 };
        out.push((SimpleState::new(0, vec![local]), P::one()));
    }
}

/// The fact `ψ = ¬does_i(α)` of the §4 counterexample.
#[must_use]
pub fn psi() -> NotFact<DoesFact> {
    NotFact(DoesFact::new(AGENT_I, ALPHA))
}

/// The fact `ϕ = does_i(α)` of the §6 counterexample.
#[must_use]
pub fn phi() -> DoesFact {
    DoesFact::new(AGENT_I, ALPHA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::belief::ActionAnalysis;
    use pak_core::independence::is_local_state_independent;
    use pak_core::theorems::check_expectation;
    use pak_num::Rational;

    #[test]
    fn sufficiency_counterexample_exact() {
        let pps = figure1::<Rational>();
        let a = ActionAnalysis::new(&pps, AGENT_I, ALPHA, &psi()).unwrap();
        // β_i(ψ) = ½ whenever α is performed…
        assert_eq!(a.min_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
        assert_eq!(a.max_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
        // …but µ(ψ@α | α) = 0 < ½.
        assert!(a.constraint_probability().is_zero());
        // The independence premise indeed fails.
        assert!(!is_local_state_independent(&pps, &psi(), AGENT_I, ALPHA));
    }

    #[test]
    fn expectation_counterexample_exact() {
        let pps = figure1::<Rational>();
        let rep = check_expectation(&pps, AGENT_I, ALPHA, &phi()).unwrap();
        assert!(!rep.independence.independent);
        assert_eq!(rep.lhs, Rational::one());
        assert_eq!(rep.rhs, Rational::from_ratio(1, 2));
        assert!(!rep.equal);
        // Vacuously consistent with Theorem 6.2 (premise fails).
        assert!(rep.implication_holds());
    }

    #[test]
    fn alpha_prime_is_symmetric() {
        let pps = figure1::<Rational>();
        let phi_prime = DoesFact::new(AGENT_I, ALPHA_PRIME);
        let a = ActionAnalysis::new(&pps, AGENT_I, ALPHA_PRIME, &phi_prime).unwrap();
        assert_eq!(a.constraint_probability(), Rational::one());
        assert_eq!(a.expected_belief(), Rational::from_ratio(1, 2));
    }

    #[test]
    fn f64_variant_matches() {
        let pps = figure1::<f64>();
        let a = ActionAnalysis::new(&pps, AGENT_I, ALPHA, &psi()).unwrap();
        assert!((a.min_belief_when_acting().unwrap() - 0.5).abs() < 1e-12);
        assert!(a.constraint_probability().abs() < 1e-12);
    }

    #[test]
    fn action_names_registered() {
        let pps = figure1::<Rational>();
        assert_eq!(pps.action_name(ALPHA), "α");
        assert_eq!(pps.action_name(ALPHA_PRIME), "α′");
    }
}
