//! The Theorem 5.2 construction `Tˆ(p, ε)` (the paper's Figure 2).
//!
//! Theorem 5.2 states that no positive lower bound exists on the measure of
//! runs in which an agent's belief must meet a constraint's threshold: for
//! every `ε > 0` and `0 < p < 1` there is a system satisfying
//! `µ(ϕ@α | α) ≥ p` in which `µ(β_i(ϕ)@α ≥ p | α) ≤ ε`.
//!
//! The witness has two agents. Agent `j` holds a `bit` that never changes;
//! initially `bit = 1` with probability `p`. In round 1, `j` sends `i` the
//! message `m` surely when `bit = 0`, and when `bit = 1` sends `m` with
//! probability `1 − ε/p` and a distinct `m′` with probability `ε/p`. Agent
//! `i` receives the message (the channel here is reliable) and
//! unconditionally performs `α` at time 1. With `ϕ = "bit = 1"`:
//!
//! * `µ(ϕ@α | α) = p` exactly,
//! * `i`'s belief when acting is `(p − ε)/(1 − ε) < p` in the merged
//!   `m`-state (measure `1 − ε`), and `1` in the `m′`-state (measure `ε`),
//! * hence `µ(β_i(ϕ)@α ≥ p | α) = ε` exactly.
//!
//! The `p = 3/4, ε = 1/4` instance has a DSL twin,
//! [`crate::dsl_twins::THRESHOLD_TWIN`], carrying a proof obligation: the
//! compiled program must unfold bit-identically to this hand-written
//! model (discharged by `tests/dsl_differential.rs`).

use pak_core::belief::ActionAnalysis;
use pak_core::fact::StateFact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::model::ProtocolModel;

/// The acting agent `i`.
pub const AGENT_I: AgentId = AgentId(0);
/// The informed agent `j` (holds `bit`).
pub const AGENT_J: AgentId = AgentId(1);
/// The unconditional action `α` of agent `i`.
pub const ALPHA: ActionId = ActionId(0);

/// Parameters of the `Tˆ(p, ε)` construction.
///
/// # Examples
///
/// ```
/// use pak_systems::threshold::ThresholdConstruction;
/// use pak_num::Rational;
///
/// let t = ThresholdConstruction::new(
///     Rational::from_ratio(3, 4),
///     Rational::from_ratio(1, 100),
/// );
/// let claims = t.verify();
/// assert!(claims.all_hold());
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdConstruction<P> {
    /// The constraint threshold `p` (also the prior of `bit = 1`).
    p: P,
    /// The bound `ε` on the threshold-met measure.
    eps: P,
}

impl<P: Probability> ThresholdConstruction<P> {
    /// Creates the construction for `0 < ε < p < 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < p < 1` (the regime of the paper's proof; the
    /// remaining cases of Theorem 5.2 are trivial).
    #[must_use]
    pub fn new(p: P, eps: P) -> Self {
        assert!(
            p.at_least(&P::zero()) && !p.is_zero() && P::one().at_least(&p) && !p.is_one(),
            "p must lie strictly between 0 and 1"
        );
        assert!(
            eps.at_least(&P::zero()) && !eps.is_zero() && p.at_least(&eps) && !p.approx_eq(&eps),
            "ε must lie strictly between 0 and p"
        );
        ThresholdConstruction { p, eps }
    }

    /// The threshold `p`.
    pub fn p(&self) -> &P {
        &self.p
    }

    /// The bound `ε`.
    pub fn eps(&self) -> &P {
        &self.eps
    }

    /// Builds the witness pps.
    #[must_use]
    pub fn build(&self) -> Pps<SimpleState, P> {
        let mut b = PpsBuilder::<SimpleState, P>::new(2);
        // locals = [i's received message (0 = none yet, 1 = m, 2 = m′), j's bit]
        let s1 = b
            .initial(SimpleState::new(0, vec![0, 1]), self.p.clone())
            .expect("0 < p < 1");
        let s0 = b
            .initial(SimpleState::new(0, vec![0, 0]), self.p.one_minus())
            .expect("0 < p < 1");
        let eps_over_p = self.eps.div(&self.p);
        // Round 1: j's message reaches i.
        let t0 = b
            .child(s0, SimpleState::new(0, vec![1, 0]), P::one(), &[])
            .expect("valid");
        let t1m = b
            .child(
                s1,
                SimpleState::new(0, vec![1, 1]),
                eps_over_p.one_minus(),
                &[],
            )
            .expect("ε < p");
        let t1m2 = b
            .child(s1, SimpleState::new(0, vec![2, 1]), eps_over_p, &[])
            .expect("ε > 0");
        // Round 2: i unconditionally performs α (locals are preserved).
        b.child(
            t0,
            SimpleState::new(0, vec![1, 0]),
            P::one(),
            &[(AGENT_I, ALPHA)],
        )
        .expect("valid");
        b.child(
            t1m,
            SimpleState::new(0, vec![1, 1]),
            P::one(),
            &[(AGENT_I, ALPHA)],
        )
        .expect("valid");
        b.child(
            t1m2,
            SimpleState::new(0, vec![2, 1]),
            P::one(),
            &[(AGENT_I, ALPHA)],
        )
        .expect("valid");
        let mut pps = b.build().expect("Tˆ(p, ε) is a valid pps");
        pps.set_action_name(ALPHA, "α");
        pps
    }

    /// The condition `ϕ = "bit = 1"`.
    #[must_use]
    pub fn phi() -> StateFact<SimpleState> {
        StateFact::new("bit=1", |g: &SimpleState| g.locals[1] == 1)
    }

    /// Verifies every quantitative claim of Theorem 5.2 on the built
    /// system, returning the measured values.
    #[must_use]
    pub fn verify(&self) -> ThresholdClaims<P> {
        let pps = self.build();
        let analysis = ActionAnalysis::new(&pps, AGENT_I, ALPHA, &Self::phi())
            .expect("α is proper: performed exactly once in every run");
        let merged_expected = self.p.sub(&self.eps).div(&self.eps.one_minus());
        ThresholdClaims {
            constraint_probability: analysis.constraint_probability(),
            expected_p: self.p.clone(),
            threshold_met_measure: analysis.threshold_measure(&self.p),
            expected_eps: self.eps.clone(),
            merged_belief: analysis
                .min_belief_when_acting()
                .expect("α performed at least once"),
            expected_merged_belief: merged_expected,
            expected_belief: analysis.expected_belief(),
        }
    }
}

/// `Tˆ(p, ε)` is itself a [`ProtocolModel`]: two agents over
/// [`SimpleState`] (`locals = [i's received message, j's bit]`), the
/// environment resolving `j`'s probabilistic send at time 0 and `i`
/// unconditionally performing `α` at time 1 — unfolding it reproduces the
/// hand-built [`ThresholdConstruction::build`] tree observably (proved by
/// `tests/systems_unfold_smoke.rs`; the unfolder's frontier emits nodes in
/// a different order, but every run, probability, cell, and action event
/// coincides).
impl<P: Probability> ProtocolModel<P> for ThresholdConstruction<P> {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        2
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        vec![
            (SimpleState::new(0, vec![0, 1]), self.p.clone()),
            (SimpleState::new(0, vec![0, 0]), self.p.one_minus()),
        ]
    }

    fn is_terminal(&self, _state: &SimpleState, time: Time) -> bool {
        time >= 2
    }

    fn moves(&self, agent: AgentId, _local: &u64, time: Time) -> Vec<(Self::Move, P)> {
        // Round 2: i unconditionally performs α; everything else is a skip
        // (j's send lives in the environment's transition).
        if agent == AGENT_I && time == 1 {
            vec![(Some(ALPHA), P::one())]
        } else {
            vec![(None, P::one())]
        }
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        time: Time,
    ) -> Vec<(SimpleState, P)> {
        let mut out = Vec::new();
        self.transition_into(state, _moves, time, &mut out);
        out
    }

    fn moves_into(&self, agent: AgentId, _local: &u64, time: Time, out: &mut Vec<(Self::Move, P)>) {
        let action = (agent == AGENT_I && time == 1).then_some(ALPHA);
        out.push((action, P::one()));
    }

    fn transition_into(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        time: Time,
        out: &mut Vec<(SimpleState, P)>,
    ) {
        if time == 0 {
            // Round 1: j's message reaches i (m surely when bit = 0;
            // m with probability 1 − ε/p and m′ with ε/p when bit = 1).
            if state.locals[1] == 1 {
                let eps_over_p = self.eps.div(&self.p);
                out.push((SimpleState::new(0, vec![1, 1]), eps_over_p.one_minus()));
                out.push((SimpleState::new(0, vec![2, 1]), eps_over_p));
            } else {
                out.push((SimpleState::new(0, vec![1, 0]), P::one()));
            }
        } else {
            // Round 2: locals are preserved.
            out.push((state.clone(), P::one()));
        }
    }
}

/// The measured-vs-expected quantities of a `Tˆ(p, ε)` instance.
#[derive(Debug, Clone)]
pub struct ThresholdClaims<P> {
    /// Measured `µ(ϕ@α | α)`.
    pub constraint_probability: P,
    /// The paper's value: exactly `p`.
    pub expected_p: P,
    /// Measured `µ(β_i(ϕ)@α ≥ p | α)`.
    pub threshold_met_measure: P,
    /// The paper's value: exactly `ε`.
    pub expected_eps: P,
    /// Measured belief in the merged `m`-state.
    pub merged_belief: P,
    /// The paper's value: `(p − ε)/(1 − ε)`.
    pub expected_merged_belief: P,
    /// Measured `E[β_i(ϕ)@α | α]` (equals `p` by Theorem 6.2).
    pub expected_belief: P,
}

impl<P: Probability> ThresholdClaims<P> {
    /// Whether every claim matches.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.constraint_probability.approx_eq(&self.expected_p)
            && self.threshold_met_measure.approx_eq(&self.expected_eps)
            && self.merged_belief.approx_eq(&self.expected_merged_belief)
            && self.expected_belief.approx_eq(&self.expected_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::Facts;
    use pak_core::independence::is_local_state_independent;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn paper_claims_hold_across_parameter_sweep() {
        for (p, e) in [
            (r(3, 4), r(1, 4)),
            (r(1, 2), r(1, 100)),
            (r(99, 100), r(1, 1000)),
            (r(9, 10), r(1, 2) * r(9, 10)), // ε close to p/2
        ] {
            let t = ThresholdConstruction::new(p.clone(), e.clone());
            let claims = t.verify();
            assert!(claims.all_hold(), "p={p} ε={e}: {claims:?}");
            assert_eq!(claims.constraint_probability, p);
            assert_eq!(claims.threshold_met_measure, e);
        }
    }

    #[test]
    fn merged_belief_strictly_below_p() {
        let t = ThresholdConstruction::new(r(3, 4), r(1, 4));
        let claims = t.verify();
        assert_eq!(claims.merged_belief, r(2, 3));
        assert!(claims.merged_belief < claims.expected_p);
    }

    #[test]
    fn alpha_is_deterministic_and_phi_lsi() {
        let t = ThresholdConstruction::new(r(1, 2), r(1, 8));
        let pps = t.build();
        assert!(pps.is_deterministic_action(AGENT_I, ALPHA));
        assert!(is_local_state_independent(
            &pps,
            &ThresholdConstruction::<Rational>::phi(),
            AGENT_I,
            ALPHA
        ));
        // ϕ is also a fact about runs (bit never changes).
        assert!(pps.is_run_fact(&ThresholdConstruction::<Rational>::phi()));
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and p")]
    fn eps_at_least_p_rejected() {
        let _ = ThresholdConstruction::new(r(1, 2), r(1, 2));
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and 1")]
    fn p_one_rejected() {
        let _ = ThresholdConstruction::new(Rational::one(), r(1, 2));
    }

    #[test]
    fn f64_variant() {
        let t = ThresholdConstruction::new(0.75f64, 0.01);
        let claims = t.verify();
        assert!(claims.all_hold());
        assert!((claims.constraint_probability - 0.75).abs() < 1e-9);
        assert!((claims.threshold_met_measure - 0.01).abs() < 1e-9);
    }

    #[test]
    fn three_runs_structure() {
        let t = ThresholdConstruction::new(r(3, 4), r(1, 8));
        let pps = t.build();
        assert_eq!(pps.num_runs(), 3);
        assert!(pps.measure(&pps.all_runs()).is_one());
    }
}
