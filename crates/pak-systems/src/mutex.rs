//! Relaxed (probabilistic) mutual exclusion.
//!
//! The paper's introduction motivates probabilistic constraints with a
//! relaxed ME specification: *upon entry to the critical section, the
//! section should be empty with high probability* rather than always. This
//! module models the simplest non-trivial such scenario:
//!
//! * The environment decides at time 0 whether the critical section is
//!   occupied by a background process (probability `busy_prob`), hidden
//!   from the agents.
//! * Each agent receives an independent, noisy *free/busy* signal, wrong
//!   with probability `noise`.
//! * An agent enters (action `enter_i`) iff its signal reads *free*.
//!
//! The probabilistic constraint is `µ(empty@enter_i | enter_i) ≥ p`; the
//! analysis exposes the achieved probability (a Bayesian posterior) and the
//! PAK quantities. Entering is deterministic given the local signal, so
//! Lemma 4.3(a) applies and the expectation theorem holds exactly.

use pak_core::belief::ActionAnalysis;
use pak_core::error::AnalysisError;
use pak_core::fact::StateFact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::model::ProtocolModel;

/// The `enter` action of agent `i` is `ENTER_BASE + i`.
pub const ENTER_BASE: u32 = 100;

/// The `enter` action id of an agent.
#[must_use]
pub fn enter_action(agent: AgentId) -> ActionId {
    ActionId(ENTER_BASE + agent.0)
}

/// Local-signal encoding: the agent's local data is `SIG_FREE` or
/// `SIG_BUSY` after sensing (0 before).
const SIG_FREE: u64 = 1;
const SIG_BUSY: u64 = 2;

/// Environment encoding: the critical section is empty (`env = 0`) or
/// occupied (`env = 1`).
const CS_OCCUPIED: u64 = 1;

/// The relaxed mutual-exclusion scenario.
///
/// # Examples
///
/// ```
/// use pak_systems::mutex::RelaxedMutex;
/// use pak_core::ids::AgentId;
/// use pak_num::Rational;
///
/// // CS busy 20% of the time; sensors wrong 5% of the time.
/// let m = RelaxedMutex::new(
///     Rational::from_ratio(1, 5),
///     Rational::from_ratio(1, 20),
///     2,
/// );
/// let analysis = m.analyze(AgentId(0)).unwrap();
/// // P(empty | signal says free) = (0.8·0.95)/(0.8·0.95 + 0.2·0.05) = 76/77.
/// assert_eq!(analysis.constraint_probability(), Rational::from_ratio(76, 77));
/// ```
#[derive(Debug, Clone)]
pub struct RelaxedMutex<P> {
    busy_prob: P,
    noise: P,
    n_agents: u32,
}

impl<P: Probability> RelaxedMutex<P> {
    /// Creates the scenario.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are invalid, degenerate (0 or 1 busy-prob or
    /// noise collapse the branching), or `n_agents == 0`.
    #[must_use]
    pub fn new(busy_prob: P, noise: P, n_agents: u32) -> Self {
        for (name, p) in [("busy_prob", &busy_prob), ("noise", &noise)] {
            assert!(
                p.is_valid_probability() && !p.is_zero() && !p.is_one(),
                "{name} must lie strictly between 0 and 1"
            );
        }
        assert!(n_agents >= 1, "at least one agent required");
        assert!(n_agents <= 8, "exact enumeration supports at most 8 agents");
        RelaxedMutex {
            busy_prob,
            noise,
            n_agents,
        }
    }

    /// The prior over `occupancy × signal vector` initial states — shared
    /// by the hand-built tree and the [`ProtocolModel`] representation.
    fn initial_distribution(&self) -> Vec<(SimpleState, P)> {
        let n = self.n_agents;
        let mut initials: Vec<(SimpleState, P)> = Vec::new();
        for occupied in [false, true] {
            let p_occ = if occupied {
                self.busy_prob.clone()
            } else {
                self.busy_prob.one_minus()
            };
            // Enumerate signal vectors: bit k set = agent k reads BUSY.
            for mask in 0u32..(1 << n) {
                let mut p = p_occ.clone();
                let mut locals = Vec::with_capacity(n as usize);
                for k in 0..n {
                    let reads_busy = (mask >> k) & 1 == 1;
                    let correct = reads_busy == occupied;
                    p = p.mul(&if correct {
                        self.noise.one_minus()
                    } else {
                        self.noise.clone()
                    });
                    locals.push(if reads_busy { SIG_BUSY } else { SIG_FREE });
                }
                let env = u64::from(occupied) * CS_OCCUPIED;
                initials.push((SimpleState::new(env, locals), p));
            }
        }
        initials
    }

    /// Builds the pps: time 0 = sensing done (signals in locals), time 1 =
    /// entry decisions taken.
    #[must_use]
    pub fn build_pps(&self) -> Pps<SimpleState, P> {
        let mut b = PpsBuilder::<SimpleState, P>::new(self.n_agents);
        let n = self.n_agents;
        let initials = self.initial_distribution();
        let mut nodes = Vec::new();
        for (state, p) in initials {
            nodes.push((b.initial(state.clone(), p).expect("valid prior"), state));
        }
        // Time 0 → 1: agents whose signal reads free enter.
        for (node, state) in nodes {
            let actions: Vec<(AgentId, ActionId)> = (0..n)
                .filter(|&k| state.locals[k as usize] == SIG_FREE)
                .map(|k| (AgentId(k), enter_action(AgentId(k))))
                .collect();
            b.child(node, state, P::one(), &actions)
                .expect("valid transition");
        }
        let mut pps = b.build().expect("relaxed mutex is a valid pps");
        for k in 0..n {
            pps.set_action_name(enter_action(AgentId(k)), format!("enter_{k}"));
        }
        pps
    }

    /// The condition: the critical section is empty of the background
    /// process.
    #[must_use]
    pub fn cs_empty() -> StateFact<SimpleState> {
        StateFact::new("CS empty", |g: &SimpleState| g.env != CS_OCCUPIED)
    }

    /// Analysis of `(agent, enter_agent, CS empty)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ImproperAction`] if the agent never enters
    /// (cannot happen for valid parameters).
    pub fn analyze(&self, agent: AgentId) -> Result<ActionAnalysis<P>, AnalysisError> {
        let pps = self.build_pps();
        ActionAnalysis::new(&pps, agent, enter_action(agent), &Self::cs_empty())
    }

    /// The Bayesian posterior `P(empty | signal reads free)` in closed form
    /// — the value the analysis must reproduce.
    #[must_use]
    pub fn posterior_empty_given_free(&self) -> P {
        let free = self.busy_prob.one_minus();
        let num = free.mul(&self.noise.one_minus());
        let den = num.add(&self.busy_prob.mul(&self.noise));
        num.div(&den)
    }
}

/// The relaxed-mutex scenario is itself a [`ProtocolModel`]: each agent's
/// local data is its sensed signal, and at time 0 an agent enters iff the
/// signal reads free, over the same `occupancy × signals` prior the
/// hand-built tree enumerates. Unfolding it reproduces
/// [`RelaxedMutex::build_pps`] exactly (proved by
/// `tests/systems_unfold_smoke.rs`).
impl<P: Probability> ProtocolModel<P> for RelaxedMutex<P> {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        self.n_agents
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        self.initial_distribution()
    }

    fn is_terminal(&self, _state: &SimpleState, time: Time) -> bool {
        time >= 1
    }

    fn moves(&self, agent: AgentId, local: &u64, _time: Time) -> Vec<(Self::Move, P)> {
        if *local == SIG_FREE {
            vec![(Some(enter_action(agent)), P::one())]
        } else {
            vec![(None, P::one())]
        }
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
    ) -> Vec<(SimpleState, P)> {
        vec![(state.clone(), P::one())]
    }

    fn moves_into(&self, agent: AgentId, local: &u64, _time: Time, out: &mut Vec<(Self::Move, P)>) {
        let action = (*local == SIG_FREE).then(|| enter_action(agent));
        out.push((action, P::one()));
    }

    fn transition_into(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
        out: &mut Vec<(SimpleState, P)>,
    ) {
        out.push((state.clone(), P::one()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::Facts;
    use pak_core::theorems::{check_expectation, check_pak_corollary};
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn scenario() -> RelaxedMutex<Rational> {
        RelaxedMutex::new(r(1, 5), r(1, 20), 2)
    }

    #[test]
    fn posterior_matches_closed_form() {
        let m = scenario();
        let a = m.analyze(AgentId(0)).unwrap();
        assert_eq!(a.constraint_probability(), m.posterior_empty_given_free());
        assert_eq!(a.constraint_probability(), r(76, 77));
    }

    #[test]
    fn both_agents_symmetric() {
        let m = scenario();
        let a0 = m.analyze(AgentId(0)).unwrap();
        let a1 = m.analyze(AgentId(1)).unwrap();
        assert_eq!(a0.constraint_probability(), a1.constraint_probability());
    }

    #[test]
    fn belief_when_entering_equals_posterior() {
        // The agent's belief at entry IS the posterior: its local state is
        // exactly the signal.
        let m = scenario();
        let a = m.analyze(AgentId(0)).unwrap();
        assert_eq!(
            a.min_belief_when_acting(),
            Some(m.posterior_empty_given_free())
        );
        assert_eq!(
            a.max_belief_when_acting(),
            Some(m.posterior_empty_given_free())
        );
    }

    #[test]
    fn expectation_theorem_exact() {
        let m = scenario();
        let pps = m.build_pps();
        let rep = check_expectation(
            &pps,
            AgentId(0),
            enter_action(AgentId(0)),
            &RelaxedMutex::<Rational>::cs_empty(),
        )
        .unwrap();
        assert!(rep.independence.independent);
        assert!(rep.equal);
    }

    #[test]
    fn pak_corollary_on_mutex() {
        // 76/77 ≈ 0.987 = 1 − ε² for ε ≈ 0.114: belief ≥ 1 − ε w.p. ≥ 1 − ε.
        let m = scenario();
        let pps = m.build_pps();
        let eps = r(12, 100); // ε with 1 − ε² = 0.9856 ≤ 76/77
        let rep = check_pak_corollary(
            &pps,
            AgentId(0),
            enter_action(AgentId(0)),
            &RelaxedMutex::<Rational>::cs_empty(),
            &eps,
        )
        .unwrap();
        assert!(rep.premise_holds);
        assert!(rep.implication_holds);
    }

    #[test]
    fn enter_deterministic_and_fact_past_based() {
        let m = scenario();
        let pps = m.build_pps();
        assert!(pps.is_deterministic_action(AgentId(0), enter_action(AgentId(0))));
        assert!(pps.is_past_based(&RelaxedMutex::<Rational>::cs_empty()));
    }

    #[test]
    fn noisier_sensors_weaken_the_guarantee() {
        let sharp = RelaxedMutex::new(r(1, 5), r(1, 100), 1);
        let noisy = RelaxedMutex::new(r(1, 5), r(1, 4), 1);
        let pa = sharp.analyze(AgentId(0)).unwrap().constraint_probability();
        let pb = noisy.analyze(AgentId(0)).unwrap().constraint_probability();
        assert!(pa > pb);
    }

    #[test]
    fn single_agent_structure() {
        let m = RelaxedMutex::new(r(1, 2), r(1, 10), 1);
        let pps = m.build_pps();
        // 2 occupancy × 2 signals = 4 initial states, each one run.
        assert_eq!(pps.num_runs(), 4);
        assert!(pps.measure(&pps.all_runs()).is_one());
    }

    #[test]
    #[should_panic(expected = "strictly between 0 and 1")]
    fn degenerate_noise_rejected() {
        let _ = RelaxedMutex::new(r(1, 2), Rational::zero(), 1);
    }

    #[test]
    fn collision_probability_observable() {
        // Both agents enter while CS occupied: measure busy·noise² for 2
        // agents.
        let m = scenario();
        let pps = m.build_pps();
        let both_in_busy = StateFact::new("collision", |g: &SimpleState| {
            g.env == 1 && g.locals.iter().all(|&s| s == 1)
        });
        let ev = pps.fact_event_at_time(&both_in_busy, 0);
        assert_eq!(pps.measure(&ev), r(1, 5) * r(1, 20) * r(1, 20));
    }
}
