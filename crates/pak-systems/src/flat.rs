//! Flat (static) systems — the Monderer–Samet special case.
//!
//! §4 of the paper notes that Theorem 4.2 generalises a result of Monderer
//! and Samet \[29\] proved for a *static* model with no explicit actions: in
//! our formalism, a "flat" pps consisting only of a root and its children
//! (initial states that are also leaves). Their statement: if an agent's
//! expected posterior belief in `ϕ` is at least `p`, then the prior
//! probability of `ϕ` is at least `p` (indeed they are equal, by the law of
//! total probability — the depth-0 case of Theorem 6.2).
//!
//! This module builds flat systems from a prior over worlds together with
//! per-agent observation (partition) functions, and exposes the
//! Monderer–Samet quantities directly.

use pak_core::belief::Beliefs;
use pak_core::event::RunSet;
use pak_core::fact::StateFact;
use pak_core::ids::{ActionId, AgentId, Point, RunId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::model::ProtocolModel;

/// A flat (single-time-step) probabilistic system: a prior over worlds with
/// per-agent partitions, as in classical incomplete-information models.
///
/// # Examples
///
/// ```
/// use pak_systems::flat::FlatSystem;
/// use pak_core::ids::AgentId;
/// use pak_num::Rational;
///
/// // Three worlds; the agent cannot tell worlds 0 and 1 apart.
/// let flat = FlatSystem::new(
///     vec![
///         (Rational::from_ratio(1, 2), vec![7]),  // world 0: observation 7
///         (Rational::from_ratio(1, 4), vec![7]),  // world 1: observation 7
///         (Rational::from_ratio(1, 4), vec![9]),  // world 2: observation 9
///     ],
/// );
/// let phi = |world: u64| world <= 1;
/// // Prior of ϕ = 3/4; expected posterior must equal it (Monderer–Samet).
/// assert_eq!(flat.prior(&phi), Rational::from_ratio(3, 4));
/// assert_eq!(flat.expected_posterior(AgentId(0), &phi), Rational::from_ratio(3, 4));
/// ```
#[derive(Debug, Clone)]
pub struct FlatSystem<P: Probability> {
    pps: Pps<SimpleState, P>,
}

impl<P: Probability> FlatSystem<P> {
    /// Builds a flat system from `(prior, observations)` pairs: world `w`
    /// has the given prior probability and agent `i` observes
    /// `observations[i]` there.
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty, the priors do not sum to one, or the
    /// observation vectors have inconsistent lengths.
    #[must_use]
    pub fn new(worlds: Vec<(P, Vec<u64>)>) -> Self {
        assert!(!worlds.is_empty(), "a flat system needs at least one world");
        let n_agents = worlds[0].1.len() as u32;
        let mut b = PpsBuilder::<SimpleState, P>::new(n_agents);
        for (w, (prior, obs)) in worlds.into_iter().enumerate() {
            assert_eq!(
                obs.len() as u32,
                n_agents,
                "inconsistent observation vector"
            );
            // env records the world index; locals are the observations.
            b.initial(SimpleState::new(w as u64, obs), prior)
                .expect("valid prior");
        }
        FlatSystem {
            pps: b.build().expect("flat system is a valid pps"),
        }
    }

    /// The underlying (depth-0) pps.
    #[must_use]
    pub fn pps(&self) -> &Pps<SimpleState, P> {
        &self.pps
    }

    /// The event of the worlds satisfying `phi` (a predicate on the world
    /// index).
    #[must_use]
    pub fn event(&self, phi: &impl Fn(u64) -> bool) -> RunSet {
        RunSet::from_predicate(self.pps.num_runs(), |run| {
            let node = self.pps.node_at(run, 0).expect("flat run has time 0");
            phi(self.pps.node_state(node).env)
        })
    }

    /// The prior probability of `phi`.
    #[must_use]
    pub fn prior(&self, phi: &impl Fn(u64) -> bool) -> P {
        self.pps.measure(&self.event(phi))
    }

    /// Agent `agent`'s posterior belief in `phi` at world `world`.
    ///
    /// # Panics
    ///
    /// Panics if `world` is out of range.
    #[must_use]
    pub fn posterior(&self, agent: AgentId, phi: &impl Fn(u64) -> bool, world: usize) -> P {
        let fact = world_fact(phi);
        self.pps
            .belief(
                agent,
                &fact,
                Point {
                    run: RunId(world as u32),
                    time: 0,
                },
            )
            .expect("world exists")
    }

    /// The expected posterior `E[β_agent(ϕ)]` over the prior — by the law
    /// of total probability (the depth-0 case of Theorem 6.2), always equal
    /// to [`FlatSystem::prior`].
    #[must_use]
    pub fn expected_posterior(&self, agent: AgentId, phi: &impl Fn(u64) -> bool) -> P {
        let fact = world_fact(phi);
        let mut acc = P::zero();
        for run in self.pps.run_ids() {
            let b = self
                .pps
                .belief(agent, &fact, Point { run, time: 0 })
                .expect("world exists");
            acc.add_assign(&self.pps.run_probability(run).mul(&b));
        }
        acc
    }
}

/// The flat (static) system as a [`ProtocolModel`]: a zero-round protocol
/// whose initial states are exactly the worlds — `is_terminal` holds
/// immediately, so unfolding yields the same depth-0 tree
/// [`FlatSystem::new`] hand-builds (proved by
/// `tests/systems_unfold_smoke.rs`). The Monderer–Samet special case thus
/// rides the same model API as every other scenario.
#[derive(Debug, Clone)]
pub struct FlatModel<P> {
    /// `(prior, observations)` per world, as in [`FlatSystem::new`].
    worlds: Vec<(P, Vec<u64>)>,
}

impl<P: Probability> FlatModel<P> {
    /// Creates the model from the same `(prior, observations)` pairs as
    /// [`FlatSystem::new`].
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty or the observation vectors have
    /// inconsistent lengths (the same inputs [`FlatSystem::new`] rejects).
    #[must_use]
    pub fn new(worlds: Vec<(P, Vec<u64>)>) -> Self {
        assert!(!worlds.is_empty(), "a flat system needs at least one world");
        let n_agents = worlds[0].1.len();
        assert!(
            worlds.iter().all(|(_, obs)| obs.len() == n_agents),
            "inconsistent observation vector"
        );
        FlatModel { worlds }
    }
}

impl<P: Probability> ProtocolModel<P> for FlatModel<P> {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        self.worlds[0].1.len() as u32
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        self.worlds
            .iter()
            .enumerate()
            .map(|(w, (prior, obs))| (SimpleState::new(w as u64, obs.clone()), prior.clone()))
            .collect()
    }

    fn is_terminal(&self, _state: &SimpleState, _time: Time) -> bool {
        true // static: no rounds at all
    }

    // `moves`/`transition` are never reached (every state is terminal);
    // they still implement the trivial skip/stay protocol for callers that
    // probe the model directly.
    fn moves(&self, _agent: AgentId, _local: &u64, _time: Time) -> Vec<(Self::Move, P)> {
        vec![(None, P::one())]
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
    ) -> Vec<(SimpleState, P)> {
        vec![(state.clone(), P::one())]
    }

    fn moves_into(
        &self,
        _agent: AgentId,
        _local: &u64,
        _time: Time,
        out: &mut Vec<(Self::Move, P)>,
    ) {
        out.push((None, P::one()));
    }

    fn transition_into(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
        out: &mut Vec<(SimpleState, P)>,
    ) {
        out.push((state.clone(), P::one()));
    }
}

/// Wraps a world-index predicate as a state fact.
fn world_fact(phi: &impl Fn(u64) -> bool) -> StateFact<SimpleState> {
    // Capture the predicate's value table lazily by world index; state facts
    // must be 'static, so evaluate through the env component.
    let table: std::sync::Arc<dyn Fn(u64) -> bool + Send + Sync> = {
        // Rebuild a boxed copy of the predicate results on demand.
        // Since `phi` is not 'static, snapshot its behaviour for the world
        // indices we can encounter (u64 env values used by FlatSystem are
        // world indices, always small).
        let mut cache = Vec::new();
        for w in 0..4096u64 {
            cache.push(phi(w));
        }
        std::sync::Arc::new(move |w: u64| cache.get(w as usize).copied().unwrap_or(false))
    };
    StateFact::new("ϕ(world)", move |g: &SimpleState| table(g.env))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn three_worlds() -> FlatSystem<Rational> {
        FlatSystem::new(vec![
            (r(1, 2), vec![7, 0]),
            (r(1, 4), vec![7, 1]),
            (r(1, 4), vec![9, 1]),
        ])
    }

    #[test]
    fn monderer_samet_equality() {
        let flat = three_worlds();
        let phi = |w: u64| w <= 1;
        for agent in [AgentId(0), AgentId(1)] {
            assert_eq!(flat.expected_posterior(agent, &phi), flat.prior(&phi));
        }
    }

    #[test]
    fn posteriors_respect_partitions() {
        let flat = three_worlds();
        let phi = |w: u64| w == 0;
        // Agent 0 merges worlds 0, 1 (both observe 7): posterior = ½/(¾) = ⅔.
        assert_eq!(flat.posterior(AgentId(0), &phi, 0), r(2, 3));
        assert_eq!(flat.posterior(AgentId(0), &phi, 1), r(2, 3));
        // World 2 is fully revealed to agent 0 (observes 9).
        assert_eq!(flat.posterior(AgentId(0), &phi, 2), Rational::zero());
        // Agent 1 merges worlds 1, 2 (both observe 1).
        assert_eq!(flat.posterior(AgentId(1), &phi, 0), Rational::one());
        assert_eq!(flat.posterior(AgentId(1), &phi, 1), Rational::zero());
    }

    #[test]
    fn expected_posterior_threshold_implies_prior_threshold() {
        // The Monderer–Samet statement as an inequality: E[β] ≥ p ⇒ µ(ϕ) ≥ p.
        let flat = three_worlds();
        let phi = |w: u64| w != 2;
        let p = r(3, 4);
        let e = flat.expected_posterior(AgentId(0), &phi);
        assert!(e >= p);
        assert!(flat.prior(&phi) >= p);
    }

    #[test]
    fn single_world_system() {
        let flat = FlatSystem::<Rational>::new(vec![(Rational::one(), vec![0])]);
        let phi_true = |_w: u64| true;
        assert!(flat.prior(&phi_true).is_one());
        assert!(flat.expected_posterior(AgentId(0), &phi_true).is_one());
    }

    #[test]
    #[should_panic(expected = "at least one world")]
    fn empty_rejected() {
        let _ = FlatSystem::<Rational>::new(vec![]);
    }
}
