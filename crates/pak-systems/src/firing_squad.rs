//! The relaxed firing squad — the paper's Example 1.
//!
//! Two agents, Alice and Bob, over a synchronous lossy network (every
//! message independently lost with probability `loss`, delivered in-round
//! otherwise). Alice holds a binary `go` variable, `1` with probability
//! `go_prob`.
//!
//! **Spec**: if `go = 0`, neither agent ever fires; if `go = 1` they attempt
//! a joint firing with `µ(both fire | Alice fires) ≥ 0.95`.
//!
//! **Protocol `FS`** (verbatim from the paper):
//!
//! * Round 1 (time 0): if `go = 1` Alice sends **two** copies of a message
//!   to Bob; if `go = 0` she sends nothing.
//! * Round 2 (time 1): Bob sends `Yes` if he received at least one copy,
//!   `No` otherwise.
//! * Time 2: Alice fires iff `go = 1`; Bob fires iff he received a copy.
//!
//! With the paper's parameters (`loss = 0.1`, `go_prob = 0.5`):
//!
//! * `µ(ϕ_both @ fire_A | fire_A) = 0.99`,
//! * Alice's belief in `ϕ_both` when firing is `1` (got `Yes`), `0` (got
//!   `No`), or `0.99` (reply lost),
//! * the 0.95 threshold is met on measure `0.991` of the firing runs,
//! * the **improved** protocol of §8 (Alice refrains when she got `No`)
//!   achieves `µ = 990/991 ≈ 0.99899`.

use pak_core::belief::ActionAnalysis;
use pak_core::fact::{AndFact, DoesFact};
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::Pps;
use pak_core::prob::Probability;

use pak_protocol::messaging::{
    AgentMove, LossyMessagingModel, Message, MessageProtocol, MsgGlobal,
};
use pak_protocol::unfold::{unfold, UnfoldError};

/// Alice's agent id.
pub const ALICE: AgentId = AgentId(0);
/// Bob's agent id.
pub const BOB: AgentId = AgentId(1);
/// Alice's firing action.
pub const FIRE_A: ActionId = ActionId(0);
/// Bob's firing action.
pub const FIRE_B: ActionId = ActionId(1);

/// Payload of Alice's "go" message.
const MSG_GO: u64 = 1;
/// Payload of Bob's `Yes` reply.
const MSG_YES: u64 = 2;
/// Payload of Bob's `No` reply.
const MSG_NO: u64 = 3;

/// Bob's reply as remembered by Alice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reply {
    /// No reply arrived (either not sent yet, or lost).
    Nothing,
    /// Bob confirmed he received Alice's message.
    Yes,
    /// Bob reported receiving nothing.
    No,
}

/// A local state of the `FS` protocol (the same enum serves both agents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsLocal {
    /// Alice's local data: her `go` bit and Bob's reply, if any.
    Alice {
        /// The initial `go` variable.
        go: bool,
        /// Bob's reply as received by the end of round 2.
        reply: Reply,
    },
    /// Bob's local data.
    Bob {
        /// Whether Bob has received at least one of Alice's messages
        /// (`None` before the end of round 1).
        heard: Option<bool>,
    },
}

/// Alice's firing policy: on which round-2 information states (replies)
/// she fires, given `go = 1`.
///
/// The paper's `FS` fires on every reply ([`FirePolicy::ALWAYS`]); the §8
/// improvement skips `No` ([`FirePolicy::REFRAIN_ON_NO`]). The full policy
/// lattice is explored by [`crate::policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FirePolicy {
    /// Fire after a `Yes` reply.
    pub on_yes: bool,
    /// Fire after a `No` reply.
    pub on_no: bool,
    /// Fire when the reply was lost.
    pub on_nothing: bool,
}

impl FirePolicy {
    /// The paper's `FS`: fire regardless of the reply.
    pub const ALWAYS: FirePolicy = FirePolicy {
        on_yes: true,
        on_no: true,
        on_nothing: true,
    };
    /// The §8 improvement: refrain after a `No`.
    pub const REFRAIN_ON_NO: FirePolicy = FirePolicy {
        on_yes: true,
        on_no: false,
        on_nothing: true,
    };

    /// Whether the policy fires on the given reply.
    #[must_use]
    pub fn fires_on(&self, reply: Reply) -> bool {
        match reply {
            Reply::Yes => self.on_yes,
            Reply::No => self.on_no,
            Reply::Nothing => self.on_nothing,
        }
    }

    /// Whether the policy ever fires.
    #[must_use]
    pub fn ever_fires(&self) -> bool {
        self.on_yes || self.on_no || self.on_nothing
    }

    /// All eight policies (including the never-firing one).
    #[must_use]
    pub fn all() -> Vec<FirePolicy> {
        let mut out = Vec::with_capacity(8);
        for bits in 0u8..8 {
            out.push(FirePolicy {
                on_yes: bits & 1 != 0,
                on_no: bits & 2 != 0,
                on_nothing: bits & 4 != 0,
            });
        }
        out
    }
}

impl Default for FirePolicy {
    fn default() -> Self {
        FirePolicy::ALWAYS
    }
}

/// The `FS` protocol of Example 1, parameterised.
///
/// # Examples
///
/// ```
/// use pak_systems::firing_squad::FiringSquad;
/// use pak_num::Rational;
///
/// let fs = FiringSquad::paper();
/// let system = fs.build_pps();
/// assert_eq!(
///     system.analyze().constraint_probability(),
///     Rational::from_ratio(99, 100),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FiringSquad<P> {
    /// Per-message loss probability.
    loss: P,
    /// Probability that `go = 1`.
    go_prob: P,
    /// Alice's firing policy by reply (paper: fire always).
    policy: FirePolicy,
    /// Number of copies Alice sends in round 1 (the paper uses 2).
    copies: u32,
}

impl FiringSquad<pak_num::Rational> {
    /// The exact parameters of the paper's Example 1: `loss = 0.1`,
    /// `go_prob = 0.5`, two message copies, no refinement.
    #[must_use]
    pub fn paper() -> Self {
        FiringSquad {
            loss: pak_num::Rational::from_ratio(1, 10),
            go_prob: pak_num::Rational::from_ratio(1, 2),
            policy: FirePolicy::ALWAYS,
            copies: 2,
        }
    }

    /// The §8 improved protocol: as [`FiringSquad::paper`], but Alice
    /// refrains from firing when she received a `No` reply.
    #[must_use]
    pub fn improved() -> Self {
        FiringSquad {
            policy: FirePolicy::REFRAIN_ON_NO,
            ..Self::paper()
        }
    }
}

impl<P: Probability> FiringSquad<P> {
    /// A firing squad with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `loss` or `go_prob` is not a probability, or `copies == 0`.
    #[must_use]
    pub fn new(loss: P, go_prob: P, copies: u32) -> Self {
        assert!(loss.is_valid_probability(), "loss must lie in [0, 1]");
        assert!(go_prob.is_valid_probability(), "go_prob must lie in [0, 1]");
        assert!(copies > 0, "Alice must send at least one copy");
        FiringSquad {
            loss,
            go_prob,
            policy: FirePolicy::ALWAYS,
            copies,
        }
    }

    /// Enables the §8 refinement (refrain on `No`).
    #[must_use]
    pub fn with_refrain_on_no(mut self) -> Self {
        self.policy = FirePolicy::REFRAIN_ON_NO;
        self
    }

    /// Sets an arbitrary firing policy (see [`crate::policy`] for the full
    /// policy-space analysis).
    #[must_use]
    pub fn with_policy(mut self, policy: FirePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The current firing policy.
    #[must_use]
    pub fn policy(&self) -> FirePolicy {
        self.policy
    }

    /// The per-message loss probability.
    pub fn loss(&self) -> &P {
        &self.loss
    }

    /// Unfolds the protocol into its purely probabilistic system.
    ///
    /// # Panics
    ///
    /// Panics if unfolding fails, which cannot happen for valid parameters;
    /// use [`FiringSquad::try_build_pps`] to handle the error.
    #[must_use]
    pub fn build_pps(&self) -> FsSystem<P> {
        self.try_build_pps()
            .expect("FS unfolds for valid parameters")
    }

    /// Fallible variant of [`FiringSquad::build_pps`].
    ///
    /// # Errors
    ///
    /// Propagates any [`UnfoldError`] (e.g. an `f64` distribution drifting
    /// outside tolerance for extreme parameters).
    pub fn try_build_pps(&self) -> Result<FsSystem<P>, UnfoldError> {
        let mut pps = unfold(&self.model())?;
        pps.set_action_name(FIRE_A, "fire_A");
        pps.set_action_name(FIRE_B, "fire_B");
        Ok(FsSystem { pps })
    }

    /// The protocol as a lossy-channel
    /// [`ProtocolModel`](pak_protocol::model::ProtocolModel) — what
    /// [`FiringSquad::build_pps`] unfolds, exposed so callers can drive
    /// the model API directly (this is also how the §8 policy sweep's
    /// protocols enter the differential smoke suite).
    #[must_use]
    pub fn model(&self) -> LossyMessagingModel<Self, P> {
        LossyMessagingModel::new(self.clone(), self.loss.clone())
    }

    /// The (deterministic) move of `agent` at `(local, time)` — the shared
    /// core of [`MessageProtocol::step`] and [`MessageProtocol::step_into`].
    fn move_at(&self, agent: AgentId, local: &FsLocal, time: Time) -> AgentMove {
        match (agent, local, time) {
            // Round 1: Alice sends `copies` copies when go = 1.
            (ALICE, FsLocal::Alice { go: true, .. }, 0) => {
                let mut mv = AgentMove::skip();
                for _ in 0..self.copies {
                    mv = mv.and_send(BOB, MSG_GO);
                }
                mv
            }
            // Round 2: Bob replies Yes/No according to what he heard.
            (BOB, FsLocal::Bob { heard: Some(true) }, 1) => AgentMove::send(ALICE, MSG_YES),
            (BOB, FsLocal::Bob { heard: Some(false) }, 1) => AgentMove::send(ALICE, MSG_NO),
            // Time 2: firing decisions.
            (ALICE, FsLocal::Alice { go: true, reply }, 2) => {
                if self.policy.fires_on(*reply) {
                    AgentMove::act(FIRE_A)
                } else {
                    AgentMove::skip()
                }
            }
            (BOB, FsLocal::Bob { heard: Some(true) }, 2) => AgentMove::act(FIRE_B),
            _ => AgentMove::skip(),
        }
    }
}

impl<P: Probability> MessageProtocol<P> for FiringSquad<P> {
    type Local = FsLocal;

    fn n_agents(&self) -> u32 {
        2
    }

    fn initial(&self) -> Vec<(Vec<FsLocal>, P)> {
        let go1 = vec![
            FsLocal::Alice {
                go: true,
                reply: Reply::Nothing,
            },
            FsLocal::Bob { heard: None },
        ];
        let go0 = vec![
            FsLocal::Alice {
                go: false,
                reply: Reply::Nothing,
            },
            FsLocal::Bob { heard: None },
        ];
        if self.go_prob.is_one() {
            return vec![(go1, P::one())];
        }
        if self.go_prob.is_zero() {
            return vec![(go0, P::one())];
        }
        vec![(go1, self.go_prob.clone()), (go0, self.go_prob.one_minus())]
    }

    fn horizon(&self) -> Time {
        3
    }

    fn step(&self, agent: AgentId, local: &FsLocal, time: Time) -> Vec<(AgentMove, P)> {
        vec![(self.move_at(agent, local, time), P::one())]
    }

    fn step_into(
        &self,
        agent: AgentId,
        local: &FsLocal,
        time: Time,
        out: &mut Vec<(AgentMove, P)>,
    ) {
        out.push((self.move_at(agent, local, time), P::one()));
    }

    fn receive(
        &self,
        agent: AgentId,
        local: &FsLocal,
        _own_move: &AgentMove,
        inbox: &[Message],
        time: Time,
    ) -> FsLocal {
        match (agent, local, time) {
            (BOB, FsLocal::Bob { heard: None }, 0) => FsLocal::Bob {
                heard: Some(!inbox.is_empty()),
            },
            (ALICE, FsLocal::Alice { go, .. }, 1) => {
                let reply = match inbox.first().map(|m| m.payload) {
                    Some(MSG_YES) => Reply::Yes,
                    Some(MSG_NO) => Reply::No,
                    _ => Reply::Nothing,
                };
                FsLocal::Alice { go: *go, reply }
            }
            _ => *local,
        }
    }
}

/// The unfolded `FS` system with analysis conveniences.
#[derive(Debug, Clone)]
pub struct FsSystem<P: Probability> {
    pps: Pps<MsgGlobal<FsLocal>, P>,
}

impl<P: Probability> FsSystem<P> {
    /// The underlying purely probabilistic system.
    #[must_use]
    pub fn pps(&self) -> &Pps<MsgGlobal<FsLocal>, P> {
        &self.pps
    }

    /// The condition `ϕ_both`: both agents are currently firing.
    #[must_use]
    pub fn phi_both() -> AndFact<DoesFact, DoesFact> {
        AndFact(DoesFact::new(ALICE, FIRE_A), DoesFact::new(BOB, FIRE_B))
    }

    /// The full analysis of `(Alice, fire_A, ϕ_both)` — every quantity of
    /// Example 1.
    ///
    /// # Panics
    ///
    /// Panics if `fire_A` is not proper, which cannot happen for
    /// `go_prob > 0`.
    #[must_use]
    pub fn analyze(&self) -> ActionAnalysis<P> {
        ActionAnalysis::new(&self.pps, ALICE, FIRE_A, &Self::phi_both())
            .expect("fire_A is proper when go_prob > 0")
    }

    /// Bob-side analysis: `(Bob, fire_B, ϕ_both)`.
    ///
    /// # Panics
    ///
    /// Panics if `fire_B` is not proper (requires `go_prob > 0` and
    /// `loss < 1`).
    #[must_use]
    pub fn analyze_bob(&self) -> ActionAnalysis<P> {
        ActionAnalysis::new(&self.pps, BOB, FIRE_B, &Self::phi_both())
            .expect("fire_B is proper when go_prob > 0 and loss < 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::Facts;
    use pak_core::independence::is_local_state_independent;
    use pak_core::theorems::check_expectation;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn paper_constraint_probability_is_099() {
        let sys = FiringSquad::paper().build_pps();
        let a = sys.analyze();
        assert_eq!(a.constraint_probability(), r(99, 100));
        assert!(a.satisfies_constraint(&r(19, 20))); // the 0.95 spec
    }

    #[test]
    fn paper_threshold_met_measure_is_0991() {
        let sys = FiringSquad::paper().build_pps();
        let a = sys.analyze();
        assert_eq!(a.threshold_measure(&r(19, 20)), r(991, 1000));
    }

    #[test]
    fn alice_belief_values_are_0_099_1() {
        let sys = FiringSquad::paper().build_pps();
        let a = sys.analyze();
        let dist = a.belief_distribution();
        let beliefs: Vec<Rational> = dist.iter().map(|(b, _)| b.clone()).collect();
        assert_eq!(beliefs, vec![Rational::zero(), r(99, 100), Rational::one()]);
        // Measures, conditioned on Alice firing (= go = 1):
        // No delivered: 0.01·0.9 = 0.009; reply lost: 0.1; Yes: 0.99·0.9.
        let measures: Vec<Rational> = dist.iter().map(|(_, m)| m.clone()).collect();
        assert_eq!(measures, vec![r(9, 1000), r(100, 1000), r(891, 1000)]);
    }

    #[test]
    fn fire_a_is_deterministic_hence_lsi() {
        let sys = FiringSquad::paper().build_pps();
        assert!(sys.pps().is_deterministic_action(ALICE, FIRE_A));
        assert!(is_local_state_independent(
            sys.pps(),
            &FsSystem::<Rational>::phi_both(),
            ALICE,
            FIRE_A
        ));
    }

    #[test]
    fn expectation_theorem_holds_exactly_on_fs() {
        let sys = FiringSquad::paper().build_pps();
        let rep =
            check_expectation(sys.pps(), ALICE, FIRE_A, &FsSystem::<Rational>::phi_both()).unwrap();
        assert!(rep.independence.independent);
        assert!(rep.equal);
        assert_eq!(rep.lhs, r(99, 100));
    }

    #[test]
    fn improved_protocol_reaches_990_over_991() {
        let sys = FiringSquad::improved().build_pps();
        let a = sys.analyze();
        assert_eq!(a.constraint_probability(), r(990, 991));
        // ≈ 0.99899, as §8 reports.
        assert!((a.constraint_probability().to_f64() - 0.99899).abs() < 1e-5);
    }

    #[test]
    fn improved_protocol_fires_less_often() {
        let base = FiringSquad::paper().build_pps();
        let better = FiringSquad::improved().build_pps();
        let fire_base = base.pps().measure(&base.pps().action_event(ALICE, FIRE_A));
        let fire_better = better
            .pps()
            .measure(&better.pps().action_event(ALICE, FIRE_A));
        // go_prob = ½; Alice refrains on measure ½·0.009.
        assert_eq!(fire_base, r(1, 2));
        assert_eq!(fire_better, r(991, 2000));
    }

    #[test]
    fn go_zero_runs_never_fire() {
        let sys = FiringSquad::paper().build_pps();
        let pps = sys.pps();
        let fire_a = pps.action_event(ALICE, FIRE_A);
        let fire_b = pps.action_event(BOB, FIRE_B);
        for run in pps.run_ids() {
            let go = matches!(
                pps.node_state(pps.node_at(run, 0).unwrap()).locals[0],
                FsLocal::Alice { go: true, .. }
            );
            if !go {
                assert!(!fire_a.contains(run));
                assert!(!fire_b.contains(run));
            } else {
                assert!(fire_a.contains(run)); // standard FS always fires on go=1
            }
        }
    }

    #[test]
    fn bob_side_constraint() {
        // Given Bob fires (he heard), Alice fires too (go was 1): the
        // conditional is 1 — Bob only hears when go = 1, and Alice always
        // fires then.
        let sys = FiringSquad::paper().build_pps();
        let b = sys.analyze_bob();
        assert_eq!(b.constraint_probability(), Rational::one());
    }

    #[test]
    fn spec_violated_with_single_copy_high_loss() {
        // One copy, loss 0.1: µ(both | fire_A) = 0.9 < 0.95.
        let fs = FiringSquad::new(r(1, 10), r(1, 2), 1);
        let a = fs.build_pps().analyze();
        assert_eq!(a.constraint_probability(), r(9, 10));
        assert!(!a.satisfies_constraint(&r(19, 20)));
    }

    #[test]
    fn reliable_network_gives_certainty() {
        let fs = FiringSquad::new(Rational::zero(), r(1, 2), 2);
        let a = fs.build_pps().analyze();
        assert!(a.constraint_probability().is_one());
        assert_eq!(a.min_belief_when_acting(), Some(Rational::one()));
    }

    #[test]
    fn f64_matches_rational() {
        let exact = FiringSquad::paper().build_pps().analyze();
        let fs64 = FiringSquad::new(0.1f64, 0.5, 2);
        let approx = fs64.build_pps().analyze();
        assert!(
            (approx.constraint_probability() - exact.constraint_probability().to_f64()).abs()
                < 1e-9
        );
        assert!((approx.expected_belief() - exact.expected_belief().to_f64()).abs() < 1e-9);
    }

    #[test]
    fn run_count_is_modest() {
        let sys = FiringSquad::paper().build_pps();
        // go=0: Bob's No reply delivered or lost → 2 runs.
        // go=1: round-1 outcomes (heard / not) × round-2 reply fate → 4 runs.
        assert_eq!(sys.pps().num_runs(), 6);
    }
}
