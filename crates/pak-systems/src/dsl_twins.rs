//! DSL re-specifications of the hand-written scenarios.
//!
//! Each constant here is a complete `pak-dsl` program describing one of
//! this crate's scenarios at fixed paper parameters, paired with a
//! `*_hand` constructor returning the hand-written
//! [`ProtocolModel`](pak_protocol::model::ProtocolModel) at the *same*
//! parameters. The proof obligation — discharged by the twin tests in
//! `tests/dsl_differential.rs` — is strict: unfolding the compiled
//! program must be **bit-identical** to unfolding the hand-written model
//! (same pool ids in the same order, same node order, bit-equal run
//! probabilities, identical cells id for id), not merely observably
//! equivalent.
//!
//! The twins redundantly pin down both sides: a regression in either the
//! compiler or a hand-written model shows up as a twin divergence. They
//! also serve as realistic example programs for the DSL.
//!
//! # Examples
//!
//! ```
//! use pak_systems::dsl_twins::{JUDGE_TWIN, judge_hand};
//! use pak_dsl::compile_str;
//! use pak_num::Rational;
//! use pak_protocol::unfold::unfold;
//!
//! let compiled = compile_str::<Rational>(JUDGE_TWIN).unwrap();
//! let dsl = unfold::<_, Rational>(compiled.model()).unwrap();
//! let hand = unfold::<_, Rational>(&judge_hand::<Rational>()).unwrap();
//! assert_eq!(dsl.num_runs(), hand.num_runs());
//! ```

use pak_core::prob::Probability;

use crate::figure1::Figure1Model;
use crate::flat::FlatModel;
use crate::judge::JudgeScenario;
use crate::threshold::ThresholdConstruction;

/// The judge scenario of [`crate::judge`] at the paper-style parameters
/// `guilt_prior = 1/2`, `accuracy = 9/10`, `pieces = 3`, `convict_at = 2`
/// (the "majority rule" instance of the module tests).
///
/// The init distribution spells out the exact Bayesian prior over
/// `(guilt, guilty-pointing evidence count)` that
/// `JudgeScenario::initial_distribution` computes from the binomial pmf:
/// guilty states first (`k = 0..=3`), then innocent, matching the
/// enumeration order of the hand model.
pub const JUDGE_TWIN: &str = "\
protocol judge {
    # Convict iff at least 2 of 3 pieces of 90%-accurate evidence point
    # to guilt; prior of guilt 1/2. env = actual guilt, local = count.
    agents judge;
    horizon 1;
    action convict = 50;
    state g0 = (1, 0);  state g1 = (1, 1);
    state g2 = (1, 2);  state g3 = (1, 3);
    state i0 = (0, 0);  state i1 = (0, 1);
    state i2 = (0, 2);  state i3 = (0, 3);
    init {
        # P(guilty, k) = 1/2 * C(3,k) (9/10)^k (1/10)^(3-k)
        1/2000: g0;   27/2000: g1;  243/2000: g2;  729/2000: g3;
        # P(innocent, k) = 1/2 * C(3,k) (1/10)^k (9/10)^(3-k)
        729/2000: i0; 243/2000: i1; 27/2000: i2;   1/2000: i3;
    }
    moves judge {
        at (2, 0) -> convict;
        at (3, 0) -> convict;
        # counts 0 and 1 fall back to the default skip
    }
}";

/// The hand-written model [`JUDGE_TWIN`] must unfold identically to.
#[must_use]
pub fn judge_hand<P: Probability>() -> JudgeScenario<P> {
    JudgeScenario::new(P::from_ratio(1, 2), P::from_ratio(9, 10), 3, 2)
}

/// The `Tˆ(p, ε)` construction of [`crate::threshold`] at `p = 3/4`,
/// `ε = 1/4` — so `ε/p = 1/3` and the bit-1 send splits `2/3 : 1/3`.
///
/// Agent `i`'s unconditional `α` at time 1 becomes two move rules, one per
/// reachable received-message value (`1` = `m`, `2` = `m′`): the table is
/// keyed on the agent's local data, and at time 1 those are the only
/// locals `i` can hold.
pub const THRESHOLD_TWIN: &str = "\
protocol threshold {
    # Theorem 5.2 witness: locals = [i's received message, j's bit].
    agents i, j;
    horizon 2;
    action alpha = 0;
    state s1 = (0, 0, 1);   # bit = 1, nothing received yet
    state s0 = (0, 0, 0);   # bit = 0
    state m1 = (0, 1, 1);   # bit = 1, i received m
    state m2 = (0, 2, 1);   # bit = 1, i received m'
    state m0 = (0, 1, 0);   # bit = 0, i received m
    init { 3/4: s1; 1/4: s0; }
    moves i {
        at (1, 1) -> alpha;
        at (2, 1) -> alpha;
    }
    transitions {
        # Round 1: j sends m surely on bit 0; m with 1 - eps/p else m'.
        from s1 at 0 -> { 2/3: m1; 1/3: m2; };
        from s0 at 0 -> m0;
        # Round 2: the default copy-unchanged rule applies.
    }
}";

/// The hand-written model [`THRESHOLD_TWIN`] must unfold identically to.
#[must_use]
pub fn threshold_hand<P: Probability>() -> ThresholdConstruction<P> {
    ThresholdConstruction::new(P::from_ratio(3, 4), P::from_ratio(1, 4))
}

/// The Figure 1 counterexample of [`crate::figure1`]: a mixed `α`/`α′`
/// step whose *outcome* drives the transition — expressed with two
/// guarded rules keyed on the joint move.
pub const FIGURE1_TWIN: &str = "\
protocol figure1 {
    agents i;
    horizon 1;
    action alpha = 0;
    action alpha_prime = 1;
    state g0 = (0, 0);
    state ga = (0, 1);   # local reveals alpha was drawn
    state gb = (0, 2);   # local reveals alpha' was drawn
    init { 1: g0; }
    moves i { at (0, 0) -> { 1/2: alpha; 1/2: alpha_prime; }; }
    transitions {
        from g0 at 0 when [alpha] -> ga;
        from g0 at 0 when [alpha_prime] -> gb;
    }
}";

/// The hand-written model [`FIGURE1_TWIN`] must unfold identically to.
#[must_use]
pub fn figure1_hand() -> Figure1Model {
    Figure1Model
}

/// The three-world Monderer–Samet system of [`crate::flat`] (the
/// `three_worlds` instance of its tests): a zero-horizon program whose
/// initial distribution *is* the whole system.
pub const FLAT_TWIN: &str = "\
protocol flat {
    # env = world index; locals = the agents' observations.
    agents a, b;
    horizon 0;
    state w0 = (0, 7, 0);
    state w1 = (1, 7, 1);
    state w2 = (2, 9, 1);
    init { 1/2: w0; 1/4: w1; 1/4: w2; }
}";

/// The hand-written model [`FLAT_TWIN`] must unfold identically to.
#[must_use]
pub fn flat_hand<P: Probability>() -> FlatModel<P> {
    FlatModel::new(vec![
        (P::from_ratio(1, 2), vec![7, 0]),
        (P::from_ratio(1, 4), vec![7, 1]),
        (P::from_ratio(1, 4), vec![9, 1]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::belief::ActionAnalysis;
    use pak_core::ids::{ActionId, AgentId};
    use pak_dsl::compile_str;
    use pak_num::Rational;
    use pak_protocol::unfold::unfold;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn judge_twin_reproduces_the_analysis() {
        let compiled = compile_str::<Rational>(JUDGE_TWIN).unwrap();
        assert_eq!(compiled.action("convict"), Some(crate::judge::CONVICT));
        let pps = unfold::<_, Rational>(compiled.model()).unwrap();
        let a = ActionAnalysis::new(
            &pps,
            crate::judge::JUDGE,
            crate::judge::CONVICT,
            &JudgeScenario::<Rational>::guilty(),
        )
        .unwrap();
        let hand = judge_hand::<Rational>().analyze().unwrap();
        assert_eq!(a.constraint_probability(), hand.constraint_probability());
        assert_eq!(a.action_measure(), hand.action_measure());
    }

    #[test]
    fn threshold_twin_reproduces_the_claims() {
        let compiled = compile_str::<Rational>(THRESHOLD_TWIN).unwrap();
        assert_eq!(compiled.agent("i"), Some(crate::threshold::AGENT_I));
        let pps = unfold::<_, Rational>(compiled.model()).unwrap();
        let a = ActionAnalysis::new(
            &pps,
            crate::threshold::AGENT_I,
            crate::threshold::ALPHA,
            &ThresholdConstruction::<Rational>::phi(),
        )
        .unwrap();
        // µ(ϕ@α | α) = p and µ(β ≥ p | α) = ε, exactly as in the paper.
        assert_eq!(a.constraint_probability(), r(3, 4));
        assert_eq!(a.threshold_measure(&r(3, 4)), r(1, 4));
        assert_eq!(a.min_belief_when_acting(), Some(r(2, 3)));
    }

    #[test]
    fn figure1_twin_reproduces_the_counterexample() {
        let compiled = compile_str::<Rational>(FIGURE1_TWIN).unwrap();
        assert_eq!(compiled.action("alpha"), Some(crate::figure1::ALPHA));
        let pps = unfold::<_, Rational>(compiled.model()).unwrap();
        let a = ActionAnalysis::new(
            &pps,
            crate::figure1::AGENT_I,
            crate::figure1::ALPHA,
            &crate::figure1::psi(),
        )
        .unwrap();
        assert_eq!(a.min_belief_when_acting(), Some(r(1, 2)));
        assert!(a.constraint_probability().is_zero());
    }

    #[test]
    fn flat_twin_is_the_three_world_prior() {
        let compiled = compile_str::<Rational>(FLAT_TWIN).unwrap();
        let pps = unfold::<_, Rational>(compiled.model()).unwrap();
        assert_eq!(pps.num_runs(), 3);
        assert_eq!(pps.run_probability(pak_core::ids::RunId(0)), &r(1, 2));
        // Worlds 0 and 1 are indistinguishable to agent a (both observe 7).
        use pak_core::ids::{Point, RunId};
        assert_eq!(
            pps.cell_at(
                AgentId(0),
                Point {
                    run: RunId(0),
                    time: 0
                }
            ),
            pps.cell_at(
                AgentId(0),
                Point {
                    run: RunId(1),
                    time: 0
                }
            ),
        );
    }

    #[test]
    fn twins_declare_the_hand_models_action_ids() {
        // The id assignments in the programs are load-bearing: they must
        // match the hand models' public constants for events to coincide.
        let j = compile_str::<Rational>(JUDGE_TWIN).unwrap();
        assert_eq!(j.action("convict"), Some(ActionId(50)));
        let f = compile_str::<Rational>(FIGURE1_TWIN).unwrap();
        assert_eq!(f.action("alpha"), Some(ActionId(0)));
        assert_eq!(f.action("alpha_prime"), Some(ActionId(1)));
        let t = compile_str::<Rational>(THRESHOLD_TWIN).unwrap();
        assert_eq!(t.action("alpha"), Some(ActionId(0)));
    }
}
