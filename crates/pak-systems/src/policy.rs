//! Belief-threshold policy analysis — the §8 design insight, made
//! executable.
//!
//! §8 observes that Theorem 6.2 is a *design tool*: "whenever an agent acts
//! while having a low degree of belief in the desired condition of a
//! probabilistic constraint, she reduces the probability of success. By
//! refraining from doing so, she can improve her performance." Moreover,
//! "if an agent never acts when her degree of belief is below the
//! threshold, Theorem 6.2 can be used to establish that an agent's actions
//! are optimal with respect to satisfying a probabilistic constraint,
//! given her information."
//!
//! This module sweeps the full lattice of firing policies for the `FS`
//! protocol (which information states Alice fires on), producing for each:
//!
//! * the firing probability (liveness),
//! * the achieved `µ(ϕ_both@fire_A | fire_A)` (safety),
//! * the Theorem 6.2 *prediction* of that value — the belief-weighted
//!   average over the chosen information states, computable from the base
//!   protocol's analysis *without re-unfolding* —
//!
//! and verifies prediction = measurement exactly. The Pareto frontier
//! confirms the §8 claims: dropping the lowest-belief state (`No`) strictly
//! improves safety; the safest live policy fires only on `Yes`.

use pak_core::prob::Probability;

use crate::firing_squad::{FirePolicy, FiringSquad, Reply, FIRE_A};

/// The outcome of one policy in the sweep.
#[derive(Debug, Clone)]
pub struct PolicyOutcome<P> {
    /// The policy.
    pub policy: FirePolicy,
    /// `µ(fire_A)`: how often Alice fires (liveness).
    pub fire_probability: P,
    /// `µ(ϕ_both@fire_A | fire_A)` measured on the re-unfolded system.
    pub success_probability: P,
    /// The Theorem 6.2 prediction: the belief-weighted average over the
    /// policy's information states, computed from the base (fire-always)
    /// analysis.
    pub predicted_success: P,
}

impl<P: Probability> PolicyOutcome<P> {
    /// Whether measurement equals prediction (exact for rationals).
    #[must_use]
    pub fn prediction_matches(&self) -> bool {
        self.success_probability.approx_eq(&self.predicted_success)
    }
}

/// The full policy sweep for an `FS` instance.
///
/// # Examples
///
/// ```
/// use pak_systems::policy::sweep_policies;
/// use pak_systems::firing_squad::{FirePolicy, FiringSquad};
/// use pak_num::Rational;
///
/// let outcomes = sweep_policies(&FiringSquad::paper());
/// // 7 live policies (the never-firing policy is excluded).
/// assert_eq!(outcomes.len(), 7);
/// // Every outcome matches its Theorem 6.2 prediction exactly.
/// assert!(outcomes.iter().all(|o| o.prediction_matches()));
/// ```
#[must_use]
pub fn sweep_policies<P: Probability>(base: &FiringSquad<P>) -> Vec<PolicyOutcome<P>> {
    // The base (fire-always) analysis provides, per reply state, Alice's
    // belief in ϕ_both and the state's conditional measure. Theorem 6.2
    // then *predicts* every other policy's success without unfolding it:
    // success(S) = Σ_{s ∈ S} µ(s)·β(s) / Σ_{s ∈ S} µ(s).
    let always = base.clone().with_policy(FirePolicy::ALWAYS);
    let base_sys = always.build_pps();
    let base_analysis = base_sys.analyze();
    let base_fire = base_sys.pps().measure(
        &base_sys
            .pps()
            .action_event(crate::firing_squad::ALICE, FIRE_A),
    );

    // Per-reply (belief, conditional measure) from the base run records.
    let mut per_reply: Vec<(Reply, P, P)> = Vec::new(); // (reply, belief, cond. measure)
    for rb in base_analysis.runs() {
        let state = base_sys
            .pps()
            .state_at(rb.point)
            .expect("action point exists");
        let crate::firing_squad::FsLocal::Alice { reply, .. } = state.locals[0] else {
            unreachable!("agent 0 is Alice");
        };
        let cond = rb.prob.div(base_analysis.action_measure());
        match per_reply.iter_mut().find(|(r, _, _)| *r == reply) {
            Some((_, _, m)) => m.add_assign(&cond),
            None => per_reply.push((reply, rb.belief.clone(), cond)),
        }
    }

    let mut outcomes = Vec::new();
    for policy in FirePolicy::all() {
        if !policy.ever_fires() {
            continue;
        }
        // Theorem 6.2 prediction from the base analysis.
        let mut mass = P::zero();
        let mut weighted = P::zero();
        for (reply, belief, measure) in &per_reply {
            if policy.fires_on(*reply) {
                mass.add_assign(measure);
                weighted.add_assign(&measure.mul(belief));
            }
        }
        let predicted_success = weighted.div(&mass);
        let fire_probability = base_fire.mul(&mass);

        // Ground truth: re-unfold with the policy and measure directly.
        let sys = base.clone().with_policy(policy).build_pps();
        let analysis = sys.analyze();
        outcomes.push(PolicyOutcome {
            policy,
            fire_probability,
            success_probability: analysis.constraint_probability(),
            predicted_success,
        });
    }
    outcomes
}

/// The policies on the liveness/safety Pareto frontier (no other policy
/// fires at least as often *and* succeeds strictly more).
#[must_use]
pub fn pareto_frontier<P: Probability>(outcomes: &[PolicyOutcome<P>]) -> Vec<FirePolicy> {
    let mut frontier = Vec::new();
    for a in outcomes {
        let dominated = outcomes.iter().any(|b| {
            b.fire_probability.at_least(&a.fire_probability)
                && b.success_probability.at_least(&a.success_probability)
                && (!a.fire_probability.at_least(&b.fire_probability)
                    || !a.success_probability.at_least(&b.success_probability))
        });
        if !dominated {
            frontier.push(a.policy);
        }
    }
    frontier
}

/// The optimal policy for pure safety: maximise `µ(ϕ_both | fire_A)` among
/// live policies. By §8's argument this is "fire only on the
/// highest-belief states".
#[must_use]
pub fn safest_policy<P: Probability>(outcomes: &[PolicyOutcome<P>]) -> &PolicyOutcome<P> {
    outcomes
        .iter()
        .reduce(|best, o| {
            if o.success_probability.at_least(&best.success_probability) {
                o
            } else {
                best
            }
        })
        .expect("at least one live policy")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn predictions_match_measurements_exactly() {
        let outcomes = sweep_policies(&FiringSquad::paper());
        assert_eq!(outcomes.len(), 7);
        for o in &outcomes {
            assert!(
                o.prediction_matches(),
                "policy {:?}: predicted {} ≠ measured {}",
                o.policy,
                o.predicted_success,
                o.success_probability
            );
        }
    }

    #[test]
    fn paper_policies_recovered() {
        let outcomes = sweep_policies(&FiringSquad::paper());
        let always = outcomes
            .iter()
            .find(|o| o.policy == FirePolicy::ALWAYS)
            .unwrap();
        assert_eq!(always.success_probability, r(99, 100));
        assert_eq!(always.fire_probability, r(1, 2));
        let improved = outcomes
            .iter()
            .find(|o| o.policy == FirePolicy::REFRAIN_ON_NO)
            .unwrap();
        assert_eq!(improved.success_probability, r(990, 991));
    }

    #[test]
    fn firing_only_on_yes_is_safest() {
        let outcomes = sweep_policies(&FiringSquad::paper());
        let best = safest_policy(&outcomes);
        assert_eq!(
            best.policy,
            FirePolicy {
                on_yes: true,
                on_no: false,
                on_nothing: false
            }
        );
        assert!(best.success_probability.is_one());
        // …at a liveness cost: fires only when Yes arrives.
        assert_eq!(best.fire_probability, r(1, 2) * r(891, 1000));
    }

    #[test]
    fn section8_ordering_holds() {
        // §8: ALWAYS < REFRAIN_ON_NO < fire-only-on-Yes in safety.
        let outcomes = sweep_policies(&FiringSquad::paper());
        let get = |p: FirePolicy| {
            outcomes
                .iter()
                .find(|o| o.policy == p)
                .unwrap()
                .success_probability
                .clone()
        };
        let always = get(FirePolicy::ALWAYS);
        let refrain = get(FirePolicy::REFRAIN_ON_NO);
        let only_yes = get(FirePolicy {
            on_yes: true,
            on_no: false,
            on_nothing: false,
        });
        assert!(always < refrain);
        assert!(refrain < only_yes);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let outcomes = sweep_policies(&FiringSquad::paper());
        let frontier = pareto_frontier(&outcomes);
        // ALWAYS (max liveness) and only-Yes (max safety) are both on the
        // frontier; firing only on No is not (dominated by both).
        assert!(frontier.contains(&FirePolicy::ALWAYS));
        assert!(frontier.contains(&FirePolicy {
            on_yes: true,
            on_no: false,
            on_nothing: false
        }));
        assert!(!frontier.contains(&FirePolicy {
            on_yes: false,
            on_no: true,
            on_nothing: false
        }));
    }

    #[test]
    fn fire_only_on_no_is_never_correct() {
        // The anti-policy: fire exactly when Bob said No — success 0.
        let outcomes = sweep_policies(&FiringSquad::paper());
        let worst = outcomes
            .iter()
            .find(|o| {
                o.policy
                    == FirePolicy {
                        on_yes: false,
                        on_no: true,
                        on_nothing: false,
                    }
            })
            .unwrap();
        assert!(worst.success_probability.is_zero());
    }

    #[test]
    fn sweep_works_at_other_parameters() {
        let fs = FiringSquad::new(r(1, 4), r(1, 3), 1);
        let outcomes = sweep_policies(&fs);
        for o in &outcomes {
            assert!(o.prediction_matches(), "policy {:?}", o.policy);
            assert!(o.success_probability.is_valid_probability());
        }
    }
}
