//! The judge scenario: acting only under strong belief.
//!
//! The paper (§1) contrasts probabilistic constraints with settings where an
//! agent is *required* to act only under strong belief: a judge should
//! convict only when guilt is believed "beyond a reasonable doubt" \[37\] —
//! probabilistically, only when the posterior belief in guilt exceeds a
//! threshold. (UK civil cases use the weaker "balance of probabilities":
//! threshold ½.)
//!
//! The model: the defendant is guilty with prior `guilt_prior`. The judge
//! observes `pieces` independent pieces of evidence, each *pointing the
//! right way* with probability `accuracy`. The judge's protocol convicts
//! iff at least `convict_at` pieces point to guilt. The analysis connects
//! the protocol's conviction rule to the paper's machinery:
//!
//! * the judge's belief in guilt at conviction is the exact Bayesian
//!   posterior given the evidence count;
//! * Theorem 4.2: if every conviction point has posterior ≥ τ, then
//!   `µ(guilty@convict | convict) ≥ τ` — wrongful-conviction probability is
//!   bounded by `1 − τ`;
//! * Theorem 6.2: the expected posterior at conviction equals the actual
//!   conviction accuracy.
//!
//! The majority-rule instance (prior ½, accuracy 9/10, 3 pieces, convict
//! at 2) has a DSL twin, [`crate::dsl_twins::JUDGE_TWIN`], carrying a
//! proof obligation: the compiled program must unfold bit-identically to
//! this hand-written model (discharged by `tests/dsl_differential.rs`).

use pak_core::belief::ActionAnalysis;
use pak_core::error::AnalysisError;
use pak_core::fact::StateFact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::model::ProtocolModel;

/// The judge agent.
pub const JUDGE: AgentId = AgentId(0);
/// The conviction action.
pub const CONVICT: ActionId = ActionId(50);

/// Environment encoding of actual guilt.
const GUILTY: u64 = 1;

/// The judge scenario.
///
/// # Examples
///
/// ```
/// use pak_systems::judge::JudgeScenario;
/// use pak_num::Rational;
///
/// // Guilt prior ½, 3 pieces of 90%-accurate evidence, convict on all 3.
/// let j = JudgeScenario::new(
///     Rational::from_ratio(1, 2),
///     Rational::from_ratio(9, 10),
///     3,
///     3,
/// );
/// let a = j.analyze().unwrap();
/// // Posterior given 3/3 guilty-pointing pieces: 0.9³/(0.9³+0.1³) = 729/730.
/// assert_eq!(a.constraint_probability(), Rational::from_ratio(729, 730));
/// ```
#[derive(Debug, Clone)]
pub struct JudgeScenario<P> {
    guilt_prior: P,
    accuracy: P,
    pieces: u32,
    convict_at: u32,
}

impl<P: Probability> JudgeScenario<P> {
    /// Creates the scenario: convict iff at least `convict_at` of `pieces`
    /// evidence pieces point to guilt.
    ///
    /// # Panics
    ///
    /// Panics on degenerate probabilities, `pieces == 0`,
    /// `convict_at > pieces`, or more than 16 pieces (exact enumeration).
    #[must_use]
    pub fn new(guilt_prior: P, accuracy: P, pieces: u32, convict_at: u32) -> Self {
        for (name, p) in [("guilt_prior", &guilt_prior), ("accuracy", &accuracy)] {
            assert!(
                p.is_valid_probability() && !p.is_zero() && !p.is_one(),
                "{name} must lie strictly between 0 and 1"
            );
        }
        assert!(pieces > 0 && pieces <= 16, "pieces must lie in 1..=16");
        assert!(convict_at <= pieces, "convict_at must not exceed pieces");
        JudgeScenario {
            guilt_prior,
            accuracy,
            pieces,
            convict_at,
        }
    }

    /// The prior over `(guilt, evidence count)` initial states — shared by
    /// the hand-built tree and the [`ProtocolModel`] representation.
    fn initial_distribution(&self) -> Vec<(SimpleState, P)> {
        let mut initial = Vec::new();
        for guilty in [true, false] {
            let p_g = if guilty {
                self.guilt_prior.clone()
            } else {
                self.guilt_prior.one_minus()
            };
            // k = number of guilty-pointing pieces ~ Binomial(pieces, q)
            // where q = accuracy if guilty else 1 − accuracy.
            let q = if guilty {
                self.accuracy.clone()
            } else {
                self.accuracy.one_minus()
            };
            for k in 0..=self.pieces {
                let p_k = binomial_pmf(&q, self.pieces, k);
                let prob = p_g.mul(&p_k);
                if prob.is_zero() {
                    continue;
                }
                let env = u64::from(guilty) * GUILTY;
                initial.push((SimpleState::new(env, vec![u64::from(k)]), prob));
            }
        }
        initial
    }

    /// Builds the pps: the initial states enumerate (guilt, evidence
    /// count); at time 0 → 1 the judge convicts or acquits.
    ///
    /// The judge's local data is the number of guilty-pointing pieces — its
    /// complete observation.
    #[must_use]
    pub fn build_pps(&self) -> Pps<SimpleState, P> {
        let mut b = PpsBuilder::<SimpleState, P>::new(1);
        let mut nodes = Vec::new();
        for (state, prob) in self.initial_distribution() {
            let node = b.initial(state.clone(), prob).expect("valid prior");
            nodes.push((node, state));
        }
        for (node, state) in nodes {
            let actions: &[(AgentId, ActionId)] = if state.locals[0] >= u64::from(self.convict_at) {
                &[(JUDGE, CONVICT)]
            } else {
                &[]
            };
            b.child(node, state, P::one(), actions)
                .expect("valid transition");
        }
        let mut pps = b.build().expect("judge scenario is a valid pps");
        pps.set_action_name(CONVICT, "convict");
        pps
    }

    /// The condition: the defendant is actually guilty.
    #[must_use]
    pub fn guilty() -> StateFact<SimpleState> {
        StateFact::new("guilty", |g: &SimpleState| g.env == GUILTY)
    }

    /// Analysis of `(judge, convict, guilty)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ImproperAction`] if the conviction rule
    /// never fires (e.g. `convict_at` unreachable with the given counts).
    pub fn analyze(&self) -> Result<ActionAnalysis<P>, AnalysisError> {
        let pps = self.build_pps();
        ActionAnalysis::new(&pps, JUDGE, CONVICT, &Self::guilty())
    }

    /// The exact Bayesian posterior of guilt given `k` guilty-pointing
    /// pieces.
    #[must_use]
    pub fn posterior_given_count(&self, k: u32) -> P {
        let lik_g = binomial_pmf(&self.accuracy, self.pieces, k);
        let lik_i = binomial_pmf(&self.accuracy.one_minus(), self.pieces, k);
        let num = self.guilt_prior.mul(&lik_g);
        let den = num.add(&self.guilt_prior.one_minus().mul(&lik_i));
        num.div(&den)
    }
}

/// The judge scenario is itself a [`ProtocolModel`]: one agent whose local
/// data is the guilty-pointing evidence count, convicting at time 0 iff
/// the count meets `convict_at`, over the same `(guilt, count)` prior the
/// hand-built tree enumerates. Unfolding it reproduces
/// [`JudgeScenario::build_pps`] exactly (proved by
/// `tests/systems_unfold_smoke.rs`).
impl<P: Probability> ProtocolModel<P> for JudgeScenario<P> {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        1
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        self.initial_distribution()
    }

    fn is_terminal(&self, _state: &SimpleState, time: Time) -> bool {
        time >= 1
    }

    fn moves(&self, _agent: AgentId, local: &u64, _time: Time) -> Vec<(Self::Move, P)> {
        if *local >= u64::from(self.convict_at) {
            vec![(Some(CONVICT), P::one())]
        } else {
            vec![(None, P::one())]
        }
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
    ) -> Vec<(SimpleState, P)> {
        vec![(state.clone(), P::one())]
    }

    fn moves_into(
        &self,
        _agent: AgentId,
        local: &u64,
        _time: Time,
        out: &mut Vec<(Self::Move, P)>,
    ) {
        let action = if *local >= u64::from(self.convict_at) {
            Some(CONVICT)
        } else {
            None
        };
        out.push((action, P::one()));
    }

    fn transition_into(
        &self,
        state: &SimpleState,
        _moves: &[Self::Move],
        _time: Time,
        out: &mut Vec<(SimpleState, P)>,
    ) {
        out.push((state.clone(), P::one()));
    }
}

/// Exact binomial probability mass `C(n, k) qᵏ (1−q)ⁿ⁻ᵏ`.
fn binomial_pmf<P: Probability>(q: &P, n: u32, k: u32) -> P {
    let mut coeff = P::one();
    // C(n, k) via multiplicative formula, exactly.
    for j in 0..k {
        coeff = coeff
            .mul(&P::from_ratio(u64::from(n - j), 1))
            .div(&P::from_ratio(u64::from(j + 1), 1));
    }
    let mut prob = coeff;
    for _ in 0..k {
        prob = prob.mul(q);
    }
    let not_q = q.one_minus();
    for _ in 0..(n - k) {
        prob = prob.mul(&not_q);
    }
    prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::theorems::{check_expectation, check_sufficiency};
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let q = r(3, 10);
        let total: Rational = (0..=5).map(|k| binomial_pmf(&q, 5, k)).sum();
        assert!(total.is_one());
        assert_eq!(binomial_pmf(&q, 5, 0), r(7, 10).pow(5));
        assert_eq!(binomial_pmf(&q, 1, 1), q);
    }

    #[test]
    fn unanimous_evidence_posterior() {
        let j = JudgeScenario::new(r(1, 2), r(9, 10), 3, 3);
        let a = j.analyze().unwrap();
        assert_eq!(a.constraint_probability(), r(729, 730));
        // The judge's belief at conviction equals the posterior for k = 3.
        assert_eq!(a.min_belief_when_acting(), Some(j.posterior_given_count(3)));
    }

    #[test]
    fn majority_rule_mixes_posteriors() {
        let j = JudgeScenario::new(r(1, 2), r(9, 10), 3, 2);
        let a = j.analyze().unwrap();
        // Conviction points have k = 2 or k = 3, with different posteriors.
        let dist = a.belief_distribution();
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].0, j.posterior_given_count(2));
        assert_eq!(dist[1].0, j.posterior_given_count(3));
        // Expected belief at conviction = conviction accuracy (Thm 6.2).
        assert_eq!(a.expected_belief(), a.constraint_probability());
    }

    #[test]
    fn beyond_reasonable_doubt_bound() {
        // If the rule only convicts when the posterior ≥ τ, wrongful
        // conviction ≤ 1 − τ (Theorem 4.2).
        let j = JudgeScenario::new(r(1, 2), r(9, 10), 3, 2);
        let pps = j.build_pps();
        let tau = j.posterior_given_count(2); // the weakest conviction point
        let rep = check_sufficiency(
            &pps,
            JUDGE,
            CONVICT,
            &JudgeScenario::<Rational>::guilty(),
            &tau,
        )
        .unwrap();
        assert!(rep.independent);
        assert!(rep.implication_holds);
        assert!(rep.constraint_probability.at_least(&tau));
    }

    #[test]
    fn expectation_theorem_exact() {
        let j = JudgeScenario::new(r(1, 3), r(4, 5), 4, 3);
        let pps = j.build_pps();
        let rep =
            check_expectation(&pps, JUDGE, CONVICT, &JudgeScenario::<Rational>::guilty()).unwrap();
        assert!(rep.independence.independent);
        assert!(rep.equal);
    }

    #[test]
    fn balance_of_probabilities_vs_reasonable_doubt() {
        // Civil (τ = ½, convict on majority) convicts more often but with
        // lower accuracy than criminal (convict on unanimity).
        let civil = JudgeScenario::new(r(1, 2), r(8, 10), 3, 2);
        let criminal = JudgeScenario::new(r(1, 2), r(8, 10), 3, 3);
        let ca = civil.analyze().unwrap();
        let cr = criminal.analyze().unwrap();
        assert!(ca.action_measure() > cr.action_measure());
        assert!(ca.constraint_probability() < cr.constraint_probability());
    }

    #[test]
    fn convict_at_zero_always_convicts() {
        let j = JudgeScenario::new(r(1, 2), r(9, 10), 2, 0);
        let a = j.analyze().unwrap();
        // Convicting always: accuracy = the prior.
        assert_eq!(a.constraint_probability(), r(1, 2));
        assert!(a.action_measure().is_one());
    }

    #[test]
    fn posterior_monotone_in_count() {
        let j = JudgeScenario::new(r(1, 2), r(7, 10), 5, 3);
        for k in 0..5 {
            assert!(j.posterior_given_count(k) < j.posterior_given_count(k + 1));
        }
    }

    #[test]
    #[should_panic(expected = "convict_at must not exceed pieces")]
    fn bad_rule_rejected() {
        let _ = JudgeScenario::new(r(1, 2), r(9, 10), 2, 3);
    }
}
