//! Probabilistic reliable broadcast over lossy channels.
//!
//! An `n`-agent generalisation of Example 1's coordination pattern — and a
//! miniature of the "probability-p agreement" protocols (e.g. [34, 19])
//! that the paper cites as motivation. A designated *source* holds a bit
//! and re-broadcasts it to the other `n − 1` agents for `rounds` rounds
//! over per-message-lossy channels; at the deadline every informed agent
//! *delivers* the bit (a `deliver_i` action).
//!
//! The probabilistic constraint studied: when the source delivers, **all**
//! agents deliver with probability at least `p`
//! (`µ(ϕ_all@deliver_src | deliver_src) ≥ p`). Exact value:
//! `(1 − loss^rounds)^(n−1)`. The source's belief when delivering, the
//! expectation theorem, and the PAK bound are all verified on this family.

use pak_core::belief::ActionAnalysis;
use pak_core::fact::FnFact;
use pak_core::ids::{ActionId, AgentId, Point, Time};
use pak_core::pps::Pps;
use pak_core::prob::Probability;

use pak_protocol::messaging::{
    AgentMove, LossyMessagingModel, Message, MessageProtocol, MsgGlobal,
};
use pak_protocol::unfold::{unfold_with, UnfoldConfig, UnfoldError};

/// The broadcasting source agent.
pub const SOURCE: AgentId = AgentId(0);

/// The `deliver` action of an agent: `DELIVER_BASE + agent index`.
pub const DELIVER_BASE: u32 = 200;

/// The deliver action id for an agent.
#[must_use]
pub fn deliver_action(agent: AgentId) -> ActionId {
    ActionId(DELIVER_BASE + agent.0)
}

/// An agent's local data: whether it holds the bit yet.
///
/// The `Eq`/`Hash` derives feed the unfolder's merge contract: which copy
/// of the bit got through is deliberately *not* recorded, so all loss
/// patterns with the same informed-set merge into a single tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BcastLocal {
    /// `true` once the bit is known (always true for the source).
    pub informed: bool,
}

/// The broadcast scenario.
///
/// # Examples
///
/// ```
/// use pak_systems::broadcast::Broadcast;
/// use pak_num::Rational;
///
/// // 3 agents, loss 1/10, 2 rounds: all-deliver = (1 − 0.01)² = 0.9801.
/// let b = Broadcast::new(3, Rational::from_ratio(1, 10), 2);
/// let analysis = b.build_pps().unwrap().analyze();
/// assert_eq!(
///     analysis.constraint_probability(),
///     Rational::from_ratio(9801, 10_000),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Broadcast<P> {
    n_agents: u32,
    loss: P,
    rounds: u32,
}

impl<P: Probability> Broadcast<P> {
    /// Creates the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n_agents < 2`, `rounds == 0`, or `loss` is not a
    /// probability. Exact loss enumeration is exponential in
    /// `(n_agents − 1) × rounds` messages; keep `n_agents ≤ 5`.
    #[must_use]
    pub fn new(n_agents: u32, loss: P, rounds: u32) -> Self {
        assert!(n_agents >= 2, "broadcast needs a source and a receiver");
        assert!(n_agents <= 5, "exact enumeration supports at most 5 agents");
        assert!(rounds > 0, "at least one round required");
        assert!(loss.is_valid_probability(), "loss must lie in [0, 1]");
        Broadcast {
            n_agents,
            loss,
            rounds,
        }
    }

    /// The scenario as a lossy-channel
    /// [`ProtocolModel`](pak_protocol::model::ProtocolModel) — what
    /// [`Broadcast::build_pps`] unfolds, exposed so callers can drive the
    /// model API directly.
    #[must_use]
    pub fn model(&self) -> LossyMessagingModel<Self, P> {
        LossyMessagingModel::new(self.clone(), self.loss.clone())
    }

    /// The (deterministic) move of `agent` at `(local, time)` — the shared
    /// core of [`MessageProtocol::step`] and [`MessageProtocol::step_into`].
    fn move_at(&self, agent: AgentId, local: &BcastLocal, time: Time) -> AgentMove {
        if time < self.rounds {
            if agent == SOURCE {
                // Re-broadcast to every receiver each round.
                let mut mv = AgentMove::skip();
                for a in 0..self.n_agents {
                    if AgentId(a) != SOURCE {
                        mv = mv.and_send(AgentId(a), 1);
                    }
                }
                mv
            } else {
                AgentMove::skip()
            }
        } else if local.informed {
            AgentMove::act(deliver_action(agent))
        } else {
            AgentMove::skip()
        }
    }

    /// Unfolds into the pps.
    ///
    /// # Errors
    ///
    /// Propagates [`UnfoldError`] if the configuration exceeds limits.
    pub fn build_pps(&self) -> Result<BroadcastSystem<P>, UnfoldError> {
        let model = self.model();
        let mut pps = unfold_with(
            &model,
            &UnfoldConfig {
                max_nodes: 1 << 18,
                max_depth: Some(self.rounds + 2),
                horizon: None,
            },
        )?;
        for a in 0..self.n_agents {
            pps.set_action_name(deliver_action(AgentId(a)), format!("deliver_{a}"));
        }
        Ok(BroadcastSystem {
            pps,
            n_agents: self.n_agents,
        })
    }

    /// The closed-form all-deliver probability given the source delivers:
    /// `(1 − loss^rounds)^(n−1)` (receivers are independent).
    #[must_use]
    pub fn closed_form_all_deliver(&self) -> P {
        let mut miss = P::one();
        for _ in 0..self.rounds {
            miss = miss.mul(&self.loss);
        }
        let informed = miss.one_minus();
        let mut all = P::one();
        for _ in 1..self.n_agents {
            all = all.mul(&informed);
        }
        all
    }
}

impl<P: Probability> MessageProtocol<P> for Broadcast<P> {
    type Local = BcastLocal;

    fn n_agents(&self) -> u32 {
        self.n_agents
    }

    fn initial(&self) -> Vec<(Vec<BcastLocal>, P)> {
        let mut locals = vec![BcastLocal { informed: false }; self.n_agents as usize];
        locals[SOURCE.index()] = BcastLocal { informed: true };
        vec![(locals, P::one())]
    }

    fn horizon(&self) -> Time {
        self.rounds + 1
    }

    fn step(&self, agent: AgentId, local: &BcastLocal, time: Time) -> Vec<(AgentMove, P)> {
        vec![(self.move_at(agent, local, time), P::one())]
    }

    fn step_into(
        &self,
        agent: AgentId,
        local: &BcastLocal,
        time: Time,
        out: &mut Vec<(AgentMove, P)>,
    ) {
        out.push((self.move_at(agent, local, time), P::one()));
    }

    fn receive(
        &self,
        _agent: AgentId,
        local: &BcastLocal,
        _own_move: &AgentMove,
        inbox: &[Message],
        _time: Time,
    ) -> BcastLocal {
        if inbox.is_empty() {
            *local
        } else {
            BcastLocal { informed: true }
        }
    }
}

/// The unfolded broadcast system.
#[derive(Debug, Clone)]
pub struct BroadcastSystem<P: Probability> {
    pps: Pps<MsgGlobal<BcastLocal>, P>,
    n_agents: u32,
}

impl<P: Probability> BroadcastSystem<P> {
    /// The underlying pps.
    #[must_use]
    pub fn pps(&self) -> &Pps<MsgGlobal<BcastLocal>, P> {
        &self.pps
    }

    /// The condition `ϕ_all`: every agent is currently delivering.
    #[must_use]
    pub fn phi_all(&self) -> FnFact<MsgGlobal<BcastLocal>, P> {
        let n = self.n_agents;
        FnFact::new(
            "all deliver",
            move |pps: &Pps<MsgGlobal<BcastLocal>, P>, pt: Point| {
                (0..n).all(|a| pps.does(AgentId(a), deliver_action(AgentId(a)), pt))
            },
        )
    }

    /// Analysis of `(source, deliver_src, ϕ_all)`.
    ///
    /// # Panics
    ///
    /// Panics if the source never delivers (impossible: it is always
    /// informed).
    #[must_use]
    pub fn analyze(&self) -> ActionAnalysis<P> {
        ActionAnalysis::new(&self.pps, SOURCE, deliver_action(SOURCE), &self.phi_all())
            .expect("the source always delivers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::theorems::{check_expectation, check_pak_corollary};
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn two_agents_matches_closed_form() {
        for rounds in [1u32, 2, 3] {
            let b = Broadcast::new(2, r(1, 10), rounds);
            let a = b.build_pps().unwrap().analyze();
            assert_eq!(
                a.constraint_probability(),
                b.closed_form_all_deliver(),
                "rounds={rounds}"
            );
        }
    }

    #[test]
    fn three_agents_matches_closed_form() {
        let b = Broadcast::new(3, r(1, 10), 2);
        let a = b.build_pps().unwrap().analyze();
        assert_eq!(a.constraint_probability(), r(9801, 10_000));
        assert_eq!(a.constraint_probability(), b.closed_form_all_deliver());
    }

    #[test]
    fn four_agents_one_round() {
        let b = Broadcast::new(4, r(1, 4), 1);
        let a = b.build_pps().unwrap().analyze();
        assert_eq!(a.constraint_probability(), r(3, 4).pow(3));
    }

    #[test]
    fn source_belief_is_blind_prior() {
        // The source gets no feedback, so its belief in ϕ_all when
        // delivering equals the prior coordination probability everywhere.
        let b = Broadcast::new(3, r(1, 10), 1);
        let a = b.build_pps().unwrap().analyze();
        let expected = b.closed_form_all_deliver();
        assert_eq!(a.min_belief_when_acting(), Some(expected.clone()));
        assert_eq!(a.max_belief_when_acting(), Some(expected));
    }

    #[test]
    fn expectation_theorem_holds() {
        let b = Broadcast::new(3, r(1, 5), 2);
        let sys = b.build_pps().unwrap();
        let rep =
            check_expectation(sys.pps(), SOURCE, deliver_action(SOURCE), &sys.phi_all()).unwrap();
        assert!(rep.independence.independent);
        assert!(rep.equal);
    }

    #[test]
    fn pak_bound_on_broadcast() {
        // 2 rounds, loss 1/10, 3 agents: µ = 0.9801 = 1 − 0.0199 ≥ 1 − ε²
        // for ε = 0.15.
        let b = Broadcast::new(3, r(1, 10), 2);
        let sys = b.build_pps().unwrap();
        let rep = check_pak_corollary(
            sys.pps(),
            SOURCE,
            deliver_action(SOURCE),
            &sys.phi_all(),
            &r(15, 100),
        )
        .unwrap();
        assert!(rep.premise_holds);
        assert!(rep.implication_holds);
    }

    #[test]
    fn receivers_know_when_they_deliver() {
        // A receiver delivers only when informed, so given IT delivers, it
        // is certain of its own delivery — but not of the others'.
        let b = Broadcast::new(3, r(1, 10), 1);
        let sys = b.build_pps().unwrap();
        let phi = sys.phi_all();
        let a =
            ActionAnalysis::new(sys.pps(), AgentId(1), deliver_action(AgentId(1)), &phi).unwrap();
        // Given receiver 1 delivers: all deliver iff receiver 2 informed (0.9).
        assert_eq!(a.constraint_probability(), r(9, 10));
        assert_eq!(a.min_belief_when_acting(), Some(r(9, 10)));
    }

    #[test]
    fn more_rounds_strictly_improve() {
        let p1 = Broadcast::new(3, r(1, 10), 1)
            .build_pps()
            .unwrap()
            .analyze()
            .constraint_probability();
        let p2 = Broadcast::new(3, r(1, 10), 2)
            .build_pps()
            .unwrap()
            .analyze()
            .constraint_probability();
        assert!(p1 < p2);
    }

    #[test]
    #[should_panic(expected = "at most 5 agents")]
    fn too_many_agents_rejected() {
        let _ = Broadcast::new(9, r(1, 10), 1);
    }
}
