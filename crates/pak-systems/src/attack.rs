//! Coordinated attack over an unreliable channel (Fischer–Zuck \[20\]).
//!
//! The scenario the paper's introduction builds on: general `A` receives an
//! attack order with some prior probability; the generals then exchange
//! messenger rounds over a lossy channel; at the deadline, `A` attacks iff
//! ordered and `B` attacks iff informed. No protocol can guarantee
//! coordination — the paper's Example 1 footnote traces back to this
//! problem — but probabilistic coordination improves with rounds.
//!
//! The protocol here alternates ping-pong messenger rounds:
//!
//! * even round `2k`: `A` sends "attack" to `B` if ordered;
//! * odd round `2k+1`: `B` acknowledges to `A` if informed;
//! * at the deadline (`rounds` rounds), `A` attacks iff ordered, `B`
//!   attacks iff informed.
//!
//! Fischer–Zuck's observation (which Theorem 6.2 generalises): if the
//! protocol guarantees that `B` attacks with probability `p` given that `A`
//! attacks, then `A`'s **expected** belief that `B` attacks, when `A`
//! attacks, is exactly `p`.

use pak_core::belief::ActionAnalysis;
use pak_core::fact::DoesFact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::Pps;
use pak_core::prob::Probability;

use pak_protocol::messaging::{
    AgentMove, LossyMessagingModel, Message, MessageProtocol, MsgGlobal,
};
use pak_protocol::unfold::{unfold, UnfoldError};

/// General A (receives the order).
pub const GENERAL_A: AgentId = AgentId(0);
/// General B (must be informed).
pub const GENERAL_B: AgentId = AgentId(1);
/// A's attack action.
pub const ATTACK_A: ActionId = ActionId(10);
/// B's attack action.
pub const ATTACK_B: ActionId = ActionId(11);

const MSG_ATTACK: u64 = 1;
const MSG_ACK: u64 = 2;

/// A general's local data.
///
/// The `Eq`/`Hash` derives feed the unfolder's merge contract: loss
/// patterns leaving a general with identical data collapse into one tree
/// node (e.g. losing ack 1 vs ack 2 of the same round), which is what
/// keeps the multi-round attack tree tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeneralLocal {
    /// For `A`: whether the order arrived. For `B`: whether informed.
    pub informed: bool,
    /// Number of acknowledgements received (only meaningful for `A`).
    pub acks: u32,
}

/// The coordinated-attack protocol, parameterised.
///
/// # Examples
///
/// ```
/// use pak_systems::attack::CoordinatedAttack;
/// use pak_num::Rational;
///
/// let ca = CoordinatedAttack::new(
///     Rational::from_ratio(1, 10), // loss
///     Rational::from_ratio(1, 2),  // order prior
///     2,                           // messenger rounds
/// );
/// let sys = ca.build_pps().unwrap();
/// let analysis = sys.analyze();
/// // µ(B attacks | A attacks) = 1 − loss² with 2 A→B sends… here 1 round
/// // of A→B and one ack round: coordination = 1 − loss = 9/10.
/// assert_eq!(analysis.constraint_probability(), Rational::from_ratio(9, 10));
/// ```
#[derive(Debug, Clone)]
pub struct CoordinatedAttack<P> {
    loss: P,
    order_prob: P,
    rounds: u32,
}

impl<P: Probability> CoordinatedAttack<P> {
    /// Creates the scenario.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are invalid or `rounds == 0`.
    #[must_use]
    pub fn new(loss: P, order_prob: P, rounds: u32) -> Self {
        assert!(loss.is_valid_probability(), "loss must lie in [0, 1]");
        assert!(
            order_prob.is_valid_probability(),
            "order_prob must lie in [0, 1]"
        );
        assert!(rounds > 0, "at least one messenger round is required");
        CoordinatedAttack {
            loss,
            order_prob,
            rounds,
        }
    }

    /// The scenario as a lossy-channel
    /// [`ProtocolModel`](pak_protocol::model::ProtocolModel) — what
    /// [`CoordinatedAttack::build_pps`] unfolds, exposed so callers can
    /// drive the model API directly (simulation, differential testing,
    /// parallel unfolding).
    #[must_use]
    pub fn model(&self) -> LossyMessagingModel<Self, P> {
        LossyMessagingModel::new(self.clone(), self.loss.clone())
    }

    /// Unfolds into the pps.
    ///
    /// # Errors
    ///
    /// Propagates [`UnfoldError`] (e.g. too many rounds for the node limit).
    pub fn build_pps(&self) -> Result<AttackSystem<P>, UnfoldError> {
        let mut pps = unfold(&self.model())?;
        pps.set_action_name(ATTACK_A, "attack_A");
        pps.set_action_name(ATTACK_B, "attack_B");
        Ok(AttackSystem { pps })
    }

    /// The (deterministic) move of `agent` at `(local, time)` — the shared
    /// core of [`MessageProtocol::step`] and [`MessageProtocol::step_into`].
    fn move_at(&self, agent: AgentId, local: &GeneralLocal, time: Time) -> AgentMove {
        if time < self.rounds {
            // Messenger rounds: A sends on even rounds, B acks on odd.
            if agent == GENERAL_A && time.is_multiple_of(2) && local.informed {
                AgentMove::send(GENERAL_B, MSG_ATTACK)
            } else if agent == GENERAL_B && time % 2 == 1 && local.informed {
                AgentMove::send(GENERAL_A, MSG_ACK)
            } else {
                AgentMove::skip()
            }
        } else {
            // Deadline: attack decisions.
            if local.informed {
                AgentMove::act(if agent == GENERAL_A {
                    ATTACK_A
                } else {
                    ATTACK_B
                })
            } else {
                AgentMove::skip()
            }
        }
    }
}

impl<P: Probability> MessageProtocol<P> for CoordinatedAttack<P> {
    type Local = GeneralLocal;

    fn n_agents(&self) -> u32 {
        2
    }

    fn initial(&self) -> Vec<(Vec<GeneralLocal>, P)> {
        let ordered = vec![
            GeneralLocal {
                informed: true,
                acks: 0,
            },
            GeneralLocal {
                informed: false,
                acks: 0,
            },
        ];
        let idle = vec![
            GeneralLocal {
                informed: false,
                acks: 0,
            },
            GeneralLocal {
                informed: false,
                acks: 0,
            },
        ];
        if self.order_prob.is_one() {
            return vec![(ordered, P::one())];
        }
        if self.order_prob.is_zero() {
            return vec![(idle, P::one())];
        }
        vec![
            (ordered, self.order_prob.clone()),
            (idle, self.order_prob.one_minus()),
        ]
    }

    fn horizon(&self) -> Time {
        self.rounds + 1
    }

    fn step(&self, agent: AgentId, local: &GeneralLocal, time: Time) -> Vec<(AgentMove, P)> {
        vec![(self.move_at(agent, local, time), P::one())]
    }

    fn step_into(
        &self,
        agent: AgentId,
        local: &GeneralLocal,
        time: Time,
        out: &mut Vec<(AgentMove, P)>,
    ) {
        out.push((self.move_at(agent, local, time), P::one()));
    }

    fn receive(
        &self,
        agent: AgentId,
        local: &GeneralLocal,
        _own_move: &AgentMove,
        inbox: &[Message],
        _time: Time,
    ) -> GeneralLocal {
        let mut next = *local;
        for m in inbox {
            match (agent, m.payload) {
                (GENERAL_B, MSG_ATTACK) => next.informed = true,
                (GENERAL_A, MSG_ACK) => next.acks += 1,
                _ => {}
            }
        }
        next
    }
}

/// The unfolded coordinated-attack system.
#[derive(Debug, Clone)]
pub struct AttackSystem<P: Probability> {
    pps: Pps<MsgGlobal<GeneralLocal>, P>,
}

impl<P: Probability> AttackSystem<P> {
    /// The underlying pps.
    #[must_use]
    pub fn pps(&self) -> &Pps<MsgGlobal<GeneralLocal>, P> {
        &self.pps
    }

    /// The Fischer–Zuck condition: `B` is attacking.
    #[must_use]
    pub fn b_attacks() -> DoesFact {
        DoesFact::new(GENERAL_B, ATTACK_B)
    }

    /// Analysis of `(A, attack_A, "B attacks")`.
    ///
    /// # Panics
    ///
    /// Panics if `attack_A` is not proper (requires `order_prob > 0`).
    #[must_use]
    pub fn analyze(&self) -> ActionAnalysis<P> {
        ActionAnalysis::new(&self.pps, GENERAL_A, ATTACK_A, &Self::b_attacks())
            .expect("attack_A is proper when order_prob > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::Facts;
    use pak_core::theorems::check_expectation;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn one_round_coordination_probability() {
        // One A→B round, no acks: coordination = 1 − loss.
        let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 1);
        let a = ca.build_pps().unwrap().analyze();
        assert_eq!(a.constraint_probability(), r(9, 10));
    }

    #[test]
    fn more_rounds_do_not_hurt() {
        // A re-sends on every even round: 3 rounds → two sends →
        // coordination = 1 − loss².
        let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 3);
        let a = ca.build_pps().unwrap().analyze();
        assert_eq!(a.constraint_probability(), r(99, 100));
    }

    #[test]
    fn fischer_zuck_expected_belief_equals_coordination() {
        // The [20] claim as generalised by Theorem 6.2.
        for rounds in [1, 2, 3] {
            let ca = CoordinatedAttack::new(r(1, 5), r(1, 3), rounds);
            let sys = ca.build_pps().unwrap();
            let rep = check_expectation(
                sys.pps(),
                GENERAL_A,
                ATTACK_A,
                &AttackSystem::<Rational>::b_attacks(),
            )
            .unwrap();
            assert!(rep.independence.independent, "rounds={rounds}");
            assert!(rep.equal, "rounds={rounds}: {} vs {}", rep.lhs, rep.rhs);
        }
    }

    #[test]
    fn acks_sharpen_a_beliefs() {
        // With an ack round, A's belief when attacking is 1 after an ack.
        let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 2);
        let a = ca.build_pps().unwrap().analyze();
        assert_eq!(a.max_belief_when_acting(), Some(Rational::one()));
        // Without an ack, belief is the conditional of informed given no ack:
        // P(B informed ∧ ack lost) / P(no ack) = (0.9·0.1)/(0.1+0.09) = 9/19.
        assert_eq!(a.min_belief_when_acting(), Some(r(9, 19)));
    }

    #[test]
    fn attack_a_deterministic() {
        let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 2);
        let sys = ca.build_pps().unwrap();
        assert!(sys.pps().is_deterministic_action(GENERAL_A, ATTACK_A));
        assert!(sys.pps().is_deterministic_action(GENERAL_B, ATTACK_B));
    }

    #[test]
    fn no_order_means_no_attack() {
        let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 1);
        let sys = ca.build_pps().unwrap();
        let pps = sys.pps();
        let a_attacks = pps.action_event(GENERAL_A, ATTACK_A);
        // µ(A attacks) = order prior.
        assert_eq!(pps.measure(&a_attacks), r(1, 2));
    }

    #[test]
    fn reliable_channel_coordinates_surely() {
        let ca = CoordinatedAttack::new(Rational::zero(), r(1, 2), 1);
        let a = ca.build_pps().unwrap().analyze();
        assert!(a.constraint_probability().is_one());
        assert_eq!(a.min_belief_when_acting(), Some(Rational::one()));
    }
}
