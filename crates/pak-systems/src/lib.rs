//! # pak-systems — the paper's concrete systems and scenarios
//!
//! Each module reproduces one system from *Probably Approximately Knowing*
//! (Zamir & Moses, PODC 2020) or a scenario its introduction motivates:
//!
//! | Module | Paper anchor | What it shows |
//! |--------|--------------|---------------|
//! | [`firing_squad`] | Example 1 + §8 | the `FS` protocol, its exact numbers (0.99, 0.991), and the §8 improved variant (0.99899) |
//! | [`figure1`] | Figure 1, §4 & §6 | both counterexamples: sufficiency and the expectation equality fail without local-state independence |
//! | [`threshold`] | Figure 2, Theorem 5.2 | `Tˆ(p, ε)`: the threshold can be met with arbitrarily small probability |
//! | [`attack`] | §1, Fischer–Zuck \[20\] | coordinated attack; expected belief = coordination probability |
//! | [`mutex`] | §1 | relaxed mutual exclusion with noisy sensors |
//! | [`judge`] | §1, \[37\] | conviction beyond a reasonable doubt as a belief-threshold protocol |
//! | [`flat`] | §4, Monderer–Samet \[29\] | depth-0 ("static") systems: the special case the paper generalises |
//!
//! All systems are parameterised and generic over the probability type; the
//! paper's exact numbers are reproduced with [`pak_num::Rational`].
//!
//! [`dsl_twins`] re-specifies the judge, threshold, Figure 1, and flat
//! scenarios as `pak-dsl` programs at fixed paper parameters; the twin
//! tests in `tests/dsl_differential.rs` prove each compiled program
//! unfolds bit-identically to its hand-written model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod broadcast;
pub mod dsl_twins;
pub mod figure1;
pub mod firing_squad;
pub mod flat;
pub mod judge;
pub mod mutex;
pub mod policy;
pub mod threshold;
