//! Random *protocol-consistent* system generation.
//!
//! The raw tree generator in `pak_core::generator` labels edges with
//! arbitrary actions. That is a strictly larger class than the paper
//! studies: §2.2 derives every pps from a joint protocol, so the
//! probability of an action is always a function of the acting agent's
//! local state — a property Lemma 4.3(b)'s proof uses explicitly ("since
//! `i`'s protocol `P_i` is a function of its local state, the probability
//! that `i` performs `α` is the same at all points at which its local state
//! is `ℓ_i`"). On arbitrary trees, past-based facts need **not** be
//! local-state independent of actions.
//!
//! This module generates systems inside the paper's class: a random
//! [`TableModel`] (random prior, random per-`(agent, local, time)` mixed
//! moves, random per-`(env, time)` environment branching) unfolded into a
//! pps. Lemma 4.3(b) therefore applies to the result, which is what the
//! theorem-level property tests need.

use pak_core::generator::SplitMix64;
use pak_core::ids::ActionId;
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::SimpleState;

use crate::model::TableModel;
use crate::unfold::{unfold_with, UnfoldConfig, UnfoldError};

/// Configuration for random protocol generation.
#[derive(Debug, Clone)]
pub struct RandomModelConfig {
    /// Number of agents (1..=3 recommended; joint-move branching is
    /// exponential in this).
    pub n_agents: u32,
    /// Number of initial states.
    pub initial_states: u32,
    /// Protocol horizon (rounds).
    pub horizon: u32,
    /// Number of distinct environment values driving transitions.
    pub envs: u64,
    /// Maximum environment branching per round.
    pub max_env_branching: u32,
    /// Number of distinct local-data values per agent.
    pub local_values: u64,
    /// Number of action ids per agent.
    pub actions_per_agent: u32,
}

impl Default for RandomModelConfig {
    fn default() -> Self {
        RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon: 3,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        }
    }
}

/// Generates a random table-driven protocol model.
///
/// The result is *protocol-consistent by construction*: move distributions
/// are keyed by `(agent, local, time)` and transition distributions by
/// `(env, time)`, so unfolding yields a pps in the paper's class. Because
/// distinct environment branches frequently land on the same
/// [`SimpleState`], these models exercise the unfolder's `Hash + Eq`
/// successor merging heavily — which is why the differential unfold suite
/// (`tests/unfold_differential.rs`) sweeps exactly this generator.
///
/// # Examples
///
/// ```
/// use pak_protocol::generator::{random_model, RandomModelConfig};
/// use pak_num::Rational;
///
/// let m = random_model::<Rational>(7, &RandomModelConfig::default());
/// assert_eq!(m.n_agents, 2);
/// ```
#[must_use]
pub fn random_model<P: Probability>(seed: u64, cfg: &RandomModelConfig) -> TableModel<P> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let dist = |rng: &mut SplitMix64, n: u32| -> Vec<P> {
        let weights: Vec<u64> = (0..n).map(|_| rng.range(1, 6)).collect();
        let total: u64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| P::from_ratio(w, total))
            .collect()
    };

    // Prior over initial states.
    let init_probs = dist(&mut rng, cfg.initial_states);
    let initial: Vec<(u64, Vec<u64>, P)> = init_probs
        .into_iter()
        .map(|p| {
            let env = rng.below(cfg.envs.max(1));
            let locals = (0..cfg.n_agents)
                .map(|_| rng.below(cfg.local_values.max(1)))
                .collect();
            (env, locals, p)
        })
        .collect();

    // Mixed-move tables per (agent, local, time).
    #[allow(clippy::type_complexity)]
    let mut moves: Vec<((u32, u64, u32), Vec<(Option<ActionId>, P)>)> = Vec::new();
    for a in 0..cfg.n_agents {
        for l in 0..cfg.local_values.max(1) {
            for t in 0..cfg.horizon {
                let entry = match rng.below(3) {
                    // Skip-only step.
                    0 => vec![(None, P::one())],
                    // Deterministic action step.
                    1 => {
                        let act = rng.below(u64::from(cfg.actions_per_agent)) as u32;
                        vec![(Some(ActionId(a * cfg.actions_per_agent + act)), P::one())]
                    }
                    // Mixed step between an action and skip.
                    _ => {
                        let act = rng.below(u64::from(cfg.actions_per_agent)) as u32;
                        let ps = dist(&mut rng, 2);
                        vec![
                            (
                                Some(ActionId(a * cfg.actions_per_agent + act)),
                                ps[0].clone(),
                            ),
                            (None, ps[1].clone()),
                        ]
                    }
                };
                moves.push(((a, l, t), entry));
            }
        }
    }

    // Environment transition tables per (env, time).
    #[allow(clippy::type_complexity)]
    let mut transitions: Vec<((u64, u32), Vec<(u64, Vec<u64>, P)>)> = Vec::new();
    for e in 0..cfg.envs.max(1) {
        for t in 0..cfg.horizon {
            let branches = rng.range(1, u64::from(cfg.max_env_branching)) as u32;
            let ps = dist(&mut rng, branches);
            let outcomes = ps
                .into_iter()
                .map(|p| {
                    let env = rng.below(cfg.envs.max(1));
                    let locals = (0..cfg.n_agents)
                        .map(|_| rng.below(cfg.local_values.max(1)))
                        .collect();
                    (env, locals, p)
                })
                .collect();
            transitions.push(((e, t), outcomes));
        }
    }

    TableModel {
        n_agents: cfg.n_agents,
        initial,
        horizon: cfg.horizon,
        moves,
        transitions,
        ..TableModel::default()
    }
}

/// Generates and unfolds a random protocol-consistent pps.
///
/// # Errors
///
/// Propagates [`UnfoldError::TooLarge`] if the configuration explodes past
/// the node limit.
pub fn random_pps<P: Probability>(
    seed: u64,
    cfg: &RandomModelConfig,
) -> Result<Pps<SimpleState, P>, UnfoldError> {
    let model = random_model::<P>(seed, cfg);
    unfold_with(
        &model,
        &UnfoldConfig {
            max_nodes: 1 << 18,
            max_depth: Some(cfg.horizon + 1),
            horizon: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::{Facts, StateFact};
    use pak_core::ids::{AgentId, Point};
    use pak_core::independence::is_local_state_independent;
    use pak_num::Rational;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomModelConfig::default();
        let a = random_pps::<Rational>(3, &cfg).unwrap();
        let b = random_pps::<Rational>(3, &cfg).unwrap();
        assert_eq!(a.num_runs(), b.num_runs());
        assert_eq!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn generated_systems_are_probability_spaces() {
        let cfg = RandomModelConfig::default();
        for seed in 0..10 {
            let pps = random_pps::<Rational>(seed, &cfg).unwrap();
            assert!(pps.measure(&pps.all_runs()).is_one(), "seed {seed}");
        }
    }

    #[test]
    fn lemma_43b_holds_on_protocol_consistent_systems() {
        // The property that FAILS on raw random trees and holds here:
        // past-based facts are LSI of every action of protocol systems.
        let cfg = RandomModelConfig::default();
        let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
        for seed in 0..15 {
            let pps = random_pps::<Rational>(seed, &cfg).unwrap();
            assert!(pps.is_past_based(&fact));
            // Collect actions present.
            let mut actions = Vec::new();
            for run in pps.run_ids() {
                for t in 0..pps.run_len(run) as u32 {
                    for &(a, act) in pps.actions_at(Point { run, time: t }) {
                        if !actions.contains(&(a, act)) {
                            actions.push((a, act));
                        }
                    }
                }
            }
            for (agent, action) in actions {
                assert!(
                    is_local_state_independent(&pps, &fact, agent, action),
                    "seed {seed}: LSI must hold for past-based facts on protocol systems"
                );
            }
        }
    }

    #[test]
    fn mixed_steps_occur() {
        // Across seeds, some generated system must contain a genuinely
        // mixed action step (non-deterministic action for some agent).
        let cfg = RandomModelConfig::default();
        let mut found_mixed = false;
        for seed in 0..20 {
            let pps = random_pps::<Rational>(seed, &cfg).unwrap();
            for a in 0..2 {
                for act in 0..4u32 {
                    let agent = AgentId(a);
                    let action = ActionId(act);
                    let ev = pps.action_event(agent, action);
                    if !ev.is_empty() && !pps.is_deterministic_action(agent, action) {
                        found_mixed = true;
                    }
                }
            }
        }
        assert!(found_mixed, "no mixed step in 20 seeds");
    }
}
