//! Bounded-horizon unfolding of a protocol into a pps.
//!
//! Given a [`ProtocolModel`], the unfolder
//! enumerates every reachable branching — initial states, each agent's mixed
//! move choices (the cartesian product across agents), and the environment's
//! probabilistic resolution — and materialises the paper's tree `T = (V, E,
//! π)` as a validated [`Pps`]. Successor states that coincide are *merged*
//! (their probabilities added): this keeps trees small (e.g. losing message
//! copy 1 vs copy 2 of an identical payload leads to the same global state)
//! and changes none of the measures, local states, or action events the
//! theory depends on.

use std::collections::HashMap;
use std::fmt;

use pak_core::error::PpsError;
use pak_core::ids::{ActionId, AgentId, NodeId};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

use crate::model::{validate_distribution, ProtocolModel};

/// Limits and options for unfolding.
#[derive(Debug, Clone)]
pub struct UnfoldConfig {
    /// Hard cap on the number of tree nodes; unfolding fails rather than
    /// exhausting memory. Defaults to `1 << 20`.
    pub max_nodes: usize,
    /// Optional hard cap on depth (a safety net for models whose
    /// `is_terminal` never fires). `None` trusts the model.
    pub max_depth: Option<u32>,
}

impl Default for UnfoldConfig {
    fn default() -> Self {
        UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(64),
        }
    }
}

/// Error produced by [`unfold`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The model emitted a malformed distribution (empty, non-positive
    /// entry, or not summing to one).
    BadModelDistribution {
        /// Where the bad distribution came from.
        origin: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// The unfolding exceeded [`UnfoldConfig::max_nodes`].
    TooLarge {
        /// The configured limit.
        max_nodes: usize,
    },
    /// The depth cap was hit before every path terminated.
    DepthExceeded {
        /// The configured limit.
        max_depth: u32,
    },
    /// The resulting tree failed pps validation (should not happen for
    /// well-formed models; indicates a model bug such as f64 distributions
    /// drifting outside tolerance).
    Pps(PpsError),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::BadModelDistribution { origin, detail } => {
                write!(f, "model produced a bad distribution in {origin}: {detail}")
            }
            UnfoldError::TooLarge { max_nodes } => {
                write!(
                    f,
                    "unfolding exceeded the configured limit of {max_nodes} nodes"
                )
            }
            UnfoldError::DepthExceeded { max_depth } => {
                write!(
                    f,
                    "unfolding exceeded the depth cap of {max_depth} without terminating"
                )
            }
            UnfoldError::Pps(e) => write!(f, "unfolded tree failed validation: {e}"),
        }
    }
}

impl std::error::Error for UnfoldError {}

impl From<PpsError> for UnfoldError {
    fn from(e: PpsError) -> Self {
        UnfoldError::Pps(e)
    }
}

/// Unfolds a protocol model into a purely probabilistic system with the
/// default limits.
///
/// # Errors
///
/// See [`UnfoldError`].
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_protocol::unfold::unfold;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let m = CoinModel { heads_num: 99, heads_den: 100 };
/// let pps = unfold::<_, Rational>(&m).unwrap();
/// assert_eq!(pps.num_runs(), 2);
/// assert!(pps.is_proper(AgentId(0), COIN_ACT));
/// ```
pub fn unfold<M, P>(model: &M) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    unfold_with(model, &UnfoldConfig::default())
}

/// Unfolds a protocol model with explicit limits.
///
/// # Errors
///
/// See [`UnfoldError`].
pub fn unfold_with<M, P>(model: &M, config: &UnfoldConfig) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let n_agents = model.n_agents();
    let mut builder = PpsBuilder::<M::Global, P>::new(n_agents);
    let mut node_count = 1usize; // the root

    let initial = model.initial_states();
    validate_distribution(&initial).map_err(|detail| UnfoldError::BadModelDistribution {
        origin: "initial_states",
        detail,
    })?;

    // Frontier of nodes still to expand: (builder node, state, time).
    let mut frontier: Vec<(NodeId, M::Global, u32)> = Vec::new();
    for (state, p) in initial {
        let id = builder.initial(state.clone(), p)?;
        node_count += 1;
        frontier.push((id, state, 0));
    }

    while let Some((node, state, time)) = frontier.pop() {
        if model.is_terminal(&state, time) {
            continue;
        }
        if let Some(cap) = config.max_depth {
            if time >= cap {
                return Err(UnfoldError::DepthExceeded { max_depth: cap });
            }
        }

        // Gather each agent's mixed move distribution from its local state.
        let mut per_agent: Vec<Vec<(M::Move, P)>> = Vec::with_capacity(n_agents as usize);
        for a in 0..n_agents {
            let agent = AgentId(a);
            let local = state.local(agent);
            let dist = model.moves(agent, &local, time);
            validate_distribution(&dist).map_err(|detail| UnfoldError::BadModelDistribution {
                origin: "moves",
                detail,
            })?;
            per_agent.push(dist);
        }

        // Enumerate the cartesian product of joint moves, resolve each via
        // the environment, and merge identical successors.
        #[allow(clippy::type_complexity)]
        let mut successors: Vec<(M::Global, Vec<(AgentId, ActionId)>, P)> = Vec::new();
        let mut index: HashMap<(JointKey, StateKey), usize> = HashMap::new();
        for (joint, p_joint) in CartesianMoves::new(&per_agent) {
            let actions: Vec<(AgentId, ActionId)> = joint
                .iter()
                .enumerate()
                .filter_map(|(a, mv)| model.action_of(mv).map(|act| (AgentId(a as u32), act)))
                .collect();
            let outcomes = model.transition(&state, &joint, time);
            validate_distribution(&outcomes).map_err(|detail| {
                UnfoldError::BadModelDistribution {
                    origin: "transition",
                    detail,
                }
            })?;
            for (succ, p_env) in outcomes {
                let p = p_joint.mul(&p_env);
                let jk = JointKey(format!("{actions:?}"));
                let sk = StateKey(format!("{succ:?}"));
                match index.get(&(jk.clone(), sk.clone())) {
                    Some(&i) => {
                        successors[i].2 = successors[i].2.add(&p);
                    }
                    None => {
                        index.insert((jk, sk), successors.len());
                        successors.push((succ, actions.clone(), p));
                    }
                }
            }
        }

        for (succ, actions, p) in successors {
            node_count += 1;
            if node_count > config.max_nodes {
                return Err(UnfoldError::TooLarge {
                    max_nodes: config.max_nodes,
                });
            }
            let child = builder.child(node, succ.clone(), p, &actions)?;
            frontier.push((child, succ, time + 1));
        }
    }

    Ok(builder.build()?)
}

/// Key for merging joint-action labels (Debug-format based; exact because
/// action lists are small and deterministic).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JointKey(String);

/// Key for merging successor states (Debug-format based; `GlobalState`
/// requires `Debug`, and equal states must format identically for merging to
/// fire — a soft requirement that only affects tree size, never
/// correctness).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey(String);

/// Iterator over the cartesian product of per-agent move distributions,
/// yielding each joint move with its product probability.
struct CartesianMoves<'a, T, P> {
    dists: &'a [Vec<(T, P)>],
    counters: Vec<usize>,
    done: bool,
}

impl<'a, T, P> CartesianMoves<'a, T, P> {
    fn new(dists: &'a [Vec<(T, P)>]) -> Self {
        CartesianMoves {
            dists,
            counters: vec![0; dists.len()],
            done: dists.iter().any(Vec::is_empty),
        }
    }
}

impl<T: Clone, P: Probability> Iterator for CartesianMoves<'_, T, P> {
    type Item = (Vec<T>, P);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut joint = Vec::with_capacity(self.dists.len());
        let mut prob = P::one();
        for (i, &c) in self.counters.iter().enumerate() {
            let (mv, p) = &self.dists[i][c];
            joint.push(mv.clone());
            prob = prob.mul(p);
        }
        // Advance odometer.
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] < self.dists[i].len() {
                break;
            }
            self.counters[i] = 0;
            i += 1;
        }
        Some((joint, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CoinModel, TableModel, COIN_ACT};
    use pak_core::fact::StateFact;
    use pak_core::prelude::*;
    use pak_num::Rational;

    #[test]
    fn coin_model_unfolds_to_two_runs() {
        let m = CoinModel {
            heads_num: 99,
            heads_den: 100,
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.measure(&pps.all_runs()).is_one());
        let heads = StateFact::new("heads", |g: &crate::model::CoinState| g.heads);
        let a = ActionAnalysis::new(&pps, AgentId(0), COIN_ACT, &heads).unwrap();
        assert_eq!(a.constraint_probability(), Rational::from_ratio(99, 100));
        // The blind agent's expected belief equals the prior (Theorem 6.2).
        assert_eq!(a.expected_belief(), Rational::from_ratio(99, 100));
    }

    #[test]
    fn cartesian_moves_enumerates_products() {
        let d1 = vec![
            ("a", Rational::from_ratio(1, 2)),
            ("b", Rational::from_ratio(1, 2)),
        ];
        let d2 = vec![
            ("x", Rational::from_ratio(1, 3)),
            ("y", Rational::from_ratio(1, 3)),
            ("z", Rational::from_ratio(1, 3)),
        ];
        let all: Vec<(Vec<&str>, Rational)> = CartesianMoves::new(&[d1, d2]).collect();
        assert_eq!(all.len(), 6);
        let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one());
    }

    #[test]
    fn cartesian_of_empty_list_is_unit() {
        let dists: Vec<Vec<((), Rational)>> = vec![];
        let all: Vec<(Vec<()>, Rational)> = CartesianMoves::new(&dists).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].1.is_one());
    }

    #[test]
    fn mixed_action_model_unfolds_figure1() {
        // Figure 1 via a table model: one agent, mixed α/α′ at time 0.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![(
                (0, 0, 0),
                vec![
                    (Some(ActionId(0)), Rational::from_ratio(1, 2)),
                    (Some(ActionId(1)), Rational::from_ratio(1, 2)),
                ],
            )],
            transitions: vec![],
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.is_proper(AgentId(0), ActionId(0)));
        // The paper's Figure-1 pathology, via the protocol pipeline:
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &psi).unwrap();
        assert!(a.constraint_probability().is_zero());
        assert_eq!(a.min_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
    }

    #[test]
    fn merging_identical_successors() {
        // Environment flips two fair coins but the successor state only
        // records their XOR: 4 outcomes merge into 2 children.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![],
            transitions: vec![(
                (0, 0),
                vec![
                    (0, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (0, vec![0], Rational::from_ratio(1, 4)),
                ],
            )],
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        for run in pps.run_ids() {
            assert_eq!(pps.run_probability(run), &Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn node_limit_enforced() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let cfg = UnfoldConfig {
            max_nodes: 2,
            max_depth: None,
        };
        let err = unfold_with::<_, Rational>(&m, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 2 }));
    }

    #[test]
    fn depth_cap_detects_nontermination() {
        // A model whose is_terminal never fires.
        #[derive(Debug)]
        struct Forever;
        impl ProtocolModel<Rational> for Forever {
            type Global = SimpleState;
            type Move = ();
            fn n_agents(&self) -> u32 {
                1
            }
            fn initial_states(&self) -> Vec<(SimpleState, Rational)> {
                vec![(SimpleState::zeroed(1), Rational::one())]
            }
            fn is_terminal(&self, _s: &SimpleState, _t: u32) -> bool {
                false
            }
            fn moves(&self, _a: AgentId, _l: &u64, _t: u32) -> Vec<((), Rational)> {
                vec![((), Rational::one())]
            }
            fn action_of(&self, _mv: &()) -> Option<ActionId> {
                None
            }
            fn transition(
                &self,
                s: &SimpleState,
                _m: &[()],
                _t: u32,
            ) -> Vec<(SimpleState, Rational)> {
                vec![(s.clone(), Rational::one())]
            }
        }
        let cfg = UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(8),
        };
        let err = unfold_with::<_, Rational>(&Forever, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::DepthExceeded { max_depth: 8 }));
    }

    #[test]
    fn bad_model_distribution_reported() {
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::from_ratio(1, 2))], // sums to ½
            horizon: 1,
            moves: vec![],
            transitions: vec![],
        };
        let err = unfold::<_, Rational>(&m).unwrap_err();
        assert!(matches!(
            err,
            UnfoldError::BadModelDistribution {
                origin: "initial_states",
                ..
            }
        ));
        assert!(err.to_string().contains("initial_states"));
    }
}
