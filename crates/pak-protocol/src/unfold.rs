//! Bounded-horizon unfolding of a protocol into a pps.
//!
//! Given a [`ProtocolModel`], the unfolder
//! enumerates every reachable branching — initial states, each agent's mixed
//! move choices (the cartesian product across agents), and the environment's
//! probabilistic resolution — and materialises the paper's tree `T = (V, E,
//! π)` as a validated [`Pps`]. Successor states that coincide are *merged*
//! (their probabilities added): this keeps trees small (e.g. losing message
//! copy 1 vs copy 2 of an identical payload leads to the same global state)
//! and changes none of the measures, local states, or action events the
//! theory depends on.
//!
//! # Merge contract
//!
//! Two successors of a node are merged exactly when their joint-action
//! labels and their global states both compare equal. Every successor
//! state is first *interned* into the builder's
//! [`StatePool`](pak_core::intern::StatePool) — a hash-keyed arena storing
//! each distinct state once — so the merge probe compares copyable
//! [`StateId`]s instead of full states, and no state is ever cloned into
//! the frontier or the tree. This is why [`GlobalState`] and
//! [`ProtocolModel::Move`] require `Eq + Hash`. The contract on
//! implementors is the standard one: equal states must hash equal.
//! Equality that distinguishes more (or fewer) states is *safe* — it only
//! changes the size of the unfolded tree, never any run probability, local
//! state, or action event — but `Hash`/`Eq` incoherence (equal values
//! hashing differently) would leave duplicate children carrying split
//! probability mass, so the derived implementations are strongly
//! recommended.
//!
//! # Purity contract
//!
//! The unfolder queries the model exclusively through the scratch-buffer
//! API — [`ProtocolModel::moves_into`] and
//! [`ProtocolModel::transition_into`], cleared-and-reused buffers, no
//! allocation per query — and treats both (equivalently, the
//! `Vec`-returning methods their defaults delegate to) as *pure
//! functions* of their arguments: because interning makes state identity
//! explicit, expansions are memoized per `(state, time)` and replayed for
//! every tree node that revisits the pair, so the model's methods may be
//! called once where a naive enumeration would call them many times.
//! Models whose distributions depend on hidden mutable state would
//! produce unspecified (though still validated) trees — no model in this
//! workspace does.
//!
//! The memo is also threaded into the *build* pass: each expanded node is
//! marked with its `(state, time)` key
//! ([`PpsBuilder::mark_children_shared`]), so validation sums each
//! distinct expansion's outgoing distribution once instead of re-checking
//! every replayed node with exact arithmetic.
//!
//! # Level-order emission and incremental horizon extension
//!
//! The frontier is processed in **level order**: every node of time `t`
//! is expanded before any node of time `t + 1`. This makes the
//! horizon-`h` tree a strict *prefix* of the horizon-`h + 1` tree — node
//! ids, pool ids, arenas and all — which is what lets a tree **grow**
//! instead of being rebuilt: a retained [`Unfolder`] handle keeps the
//! model, the `(state, time)` memo, the scratch buffers, and the frontier
//! alive between calls, and [`Unfolder::extend_horizon`] expands just the
//! previous leaf frontier, appending through a
//! [`PpsExtender`] that incrementally repairs the run and cell indexes.
//! The purity contract is what makes retained-memo replay across
//! extensions sound, and the grown tree is bit-identical to a
//! from-scratch unfold capped at the same horizon
//! ([`UnfoldConfig::horizon`]) — proved by the incremental-vs-scratch
//! sweep in `tests/unfold_differential.rs` and on every `pak-systems`
//! scenario by `tests/systems_unfold_smoke.rs`.
//!
//! # Determinism and parallel unfolding
//!
//! Purity is also what makes the depth-1 subtrees of the tree — one per
//! initial state — mutually independent: no expansion in one subtree can
//! observe another. [`unfold_with_options`] exploits this behind
//! [`UnfoldOptions::parallel_subtrees`], unfolding each subtree on a
//! worker with its own scratch state, memo, and
//! [`StatePool`](pak_core::intern::StatePool) shard, then stitching the
//! shards back level-interleaved ([`PpsBuilder::absorb_subtrees`]) in the
//! exact order the sequential level-order frontier would have emitted
//! them. The guarantee is strict determinism, not mere equivalence: same
//! pool ids, same node order, bit-equal probabilities, identical cells —
//! proved across the seeded sweep by `tests/unfold_differential.rs` and
//! on every `pak-systems` scenario by `tests/systems_unfold_smoke.rs`.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use pak_core::cancel::CancelToken;
use pak_core::error::PpsError;
use pak_core::failpoint::{self, Fault};
use pak_core::hash::{FxBuildHasher, FxHasher};
use pak_core::ids::{ActionId, AgentId, NodeId, StateId, Time};
use pak_core::pps::{available_cores, BuildOptions, Pps, PpsBuilder, PpsExtender};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

use crate::model::{validate_distribution, ProtocolModel};

/// A node's merged successor list: interned state, joint-action labels,
/// and accumulated probability per distinct `(actions, state)` child.
type Successors<P> = Vec<(StateId, Vec<(AgentId, ActionId)>, P)>;

/// Limits and options for unfolding.
#[derive(Debug, Clone)]
pub struct UnfoldConfig {
    /// Hard cap on the number of global-state tree nodes (the phantom root
    /// `λ` is not counted); unfolding fails rather than exhausting memory.
    /// A model whose tree has exactly `N` state nodes unfolds successfully
    /// with `max_nodes = N` and fails with `N - 1`. Defaults to `1 << 20`.
    pub max_nodes: usize,
    /// Optional hard cap on depth (a safety net for models whose
    /// `is_terminal` never fires). `None` trusts the model.
    pub max_depth: Option<u32>,
    /// Optional truncating horizon: expansion stops once the frontier
    /// reaches this time, keeping the nodes there as leaves even where the
    /// model is not yet terminal (`Some(0)` yields just the prior).
    /// Unlike [`UnfoldConfig::max_depth`] — a safety net whose violation
    /// is an *error* — hitting the horizon is a normal, successful stop:
    /// it is how a from-scratch unfold reproduces the intermediate trees
    /// of incremental growth ([`Unfolder::extend_horizon`]), which is
    /// exactly what the differential harness compares. `None` (the
    /// default) trusts [`ProtocolModel::is_terminal`] alone.
    pub horizon: Option<Time>,
}

impl Default for UnfoldConfig {
    fn default() -> Self {
        UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(64),
            horizon: None,
        }
    }
}

/// Options for [`unfold_with_options`]: how the unfolding pass executes
/// (mirroring [`BuildOptions`] for the build pass). The produced system is
/// bit-identical under every option combination — options trade wall-clock
/// for resources only.
#[derive(Debug, Clone, Default)]
pub struct UnfoldOptions {
    /// Whether to unfold the independent depth-1 subtrees (one per initial
    /// state) on worker threads (`Some(true)`), strictly sequentially
    /// (`Some(false)`), or to let the library decide (`None`). Each
    /// worker unfolds its subtree with private scratch state into its own
    /// [`PpsBuilder`] shard — pool, nodes, memo and all — and the shards
    /// are then stitched back in the exact order the sequential pass
    /// would have emitted, so pool ids, node order, and every probability
    /// are identical to the sequential result (proved by the differential
    /// harness). With fewer than two initial states there is nothing to
    /// partition and the sequential path runs regardless.
    ///
    /// `None` currently resolves to *sequential*: unlike the build pass —
    /// whose auto-threading is gated on a node count it can inspect
    /// ([`pak_core::pps::PARALLEL_CELLS_MIN_NODES`]) — the tree size is
    /// unknown before unfolding, and on the workloads measured so far
    /// thread-spawn overhead exceeds the win. Pass `Some(true)` to opt in
    /// on workloads/machines where the subtrees are large enough to
    /// amortize the workers. On a **single-core machine** even
    /// `Some(true)` runs sequentially: workers that cannot overlap are
    /// pure overhead, and the stitching contract makes the fallback
    /// observationally identical anyway.
    ///
    /// On *erroring* models the parallel path returns an error whenever
    /// the sequential one does, but when several subtrees violate
    /// different limits the reported error may name a different one.
    pub parallel_subtrees: Option<bool>,
    /// Options forwarded to the validation/indexing build pass.
    pub build: BuildOptions,
}

/// Error produced by [`unfold`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The model emitted a malformed distribution (empty, non-positive
    /// entry, or not summing to one).
    BadModelDistribution {
        /// Where the bad distribution came from.
        origin: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// The unfolding exceeded [`UnfoldConfig::max_nodes`].
    TooLarge {
        /// The configured limit.
        max_nodes: usize,
    },
    /// The depth cap was hit before every path terminated.
    DepthExceeded {
        /// The configured limit.
        max_depth: u32,
    },
    /// The resulting tree failed pps validation (should not happen for
    /// well-formed models; indicates a model bug such as f64 distributions
    /// drifting outside tolerance).
    Pps(PpsError),
    /// A [`CancelToken`] tripped (explicit cancellation or a blown
    /// deadline). The unfolder handle remains valid at the horizon of
    /// the last *committed* level — see
    /// [`Unfolder::extend_horizon_with`].
    Cancelled,
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::BadModelDistribution { origin, detail } => {
                write!(f, "model produced a bad distribution in {origin}: {detail}")
            }
            UnfoldError::TooLarge { max_nodes } => {
                write!(
                    f,
                    "unfolding exceeded the configured limit of {max_nodes} nodes"
                )
            }
            UnfoldError::DepthExceeded { max_depth } => {
                write!(
                    f,
                    "unfolding exceeded the depth cap of {max_depth} without terminating"
                )
            }
            UnfoldError::Pps(e) => write!(f, "unfolded tree failed validation: {e}"),
            UnfoldError::Cancelled => {
                write!(f, "unfolding was cancelled (deadline or explicit cancel)")
            }
        }
    }
}

impl std::error::Error for UnfoldError {}

impl From<PpsError> for UnfoldError {
    fn from(e: PpsError) -> Self {
        UnfoldError::Pps(e)
    }
}

/// Unfolds a protocol model into a purely probabilistic system with the
/// default limits.
///
/// # Errors
///
/// See [`UnfoldError`].
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_protocol::unfold::unfold;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let m = CoinModel { heads_num: 99, heads_den: 100 };
/// let pps = unfold::<_, Rational>(&m).unwrap();
/// assert_eq!(pps.num_runs(), 2);
/// assert!(pps.is_proper(AgentId(0), COIN_ACT));
/// ```
pub fn unfold<M, P>(model: &M) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    unfold_with(model, &UnfoldConfig::default())
}

/// Unfolds a protocol model with explicit limits.
///
/// # Errors
///
/// See [`UnfoldError`].
pub fn unfold_with<M, P>(model: &M, config: &UnfoldConfig) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    Ok(unfold_to_builder(model, config)?.build()?)
}

/// Unfolds a protocol model into the raw (not yet validated) tree,
/// stopping just before [`PpsBuilder::build`].
///
/// This exposes the pipeline's two phases separately: tree construction
/// (this function) and the validation/indexing build pass (`build`, or
/// [`PpsBuilder::build_with`] for explicit [`BuildOptions`]). Profilers
/// use it to
/// attribute time per phase; the differential harness uses it to prove
/// the sequential and threaded build paths bit-identical on one tree.
///
/// # Errors
///
/// See [`UnfoldError`] — everything except [`UnfoldError::Pps`], which can
/// only arise from the deferred build step.
pub fn unfold_to_builder<M, P>(
    model: &M,
    config: &UnfoldConfig,
) -> Result<PpsBuilder<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let n_agents = model.n_agents();
    let initial = model.initial_states();
    validate_distribution(&initial).map_err(|detail| UnfoldError::BadModelDistribution {
        origin: "initial_states",
        detail,
    })?;
    unfold_sequential(model, n_agents, initial, config)
}

/// The shared sequential pass over a pre-validated prior: seeds one
/// [`ExpansionCore`] with every initial state and expands level by level
/// to exhaustion (or to `config.horizon`). Both [`unfold_to_builder`] and
/// the declined-parallelism path of [`unfold_to_builder_with_options`]
/// run exactly this, so the two entry points cannot drift apart.
fn unfold_sequential<M, P>(
    model: &M,
    n_agents: u32,
    initial: Vec<(M::Global, P)>,
    config: &UnfoldConfig,
) -> Result<PpsBuilder<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    if initial.len() > config.max_nodes {
        return Err(UnfoldError::TooLarge {
            max_nodes: config.max_nodes,
        });
    }
    let mut core = ExpansionCore::new(model, n_agents);
    let mut builder = PpsBuilder::new(n_agents);
    core.seed(&mut builder, initial)?;
    core.run_levels(&mut builder, 0, config.horizon, config)?;
    Ok(builder)
}

/// Unfolds a protocol model with explicit limits *and* execution options:
/// the parallel sibling of [`unfold_with`], and the only entry point for
/// [`UnfoldOptions::parallel_subtrees`].
///
/// The depth-1 subtrees of the tree — one per initial state — are mutually
/// independent: the purity contract makes every expansion a function of
/// `(state, time)` alone, so each subtree can be unfolded by a worker with
/// its own scratch state, [`StatePool`](pak_core::intern::StatePool)
/// shard, and memo, and the shards stitched back level-interleaved
/// ([`PpsBuilder::absorb_subtrees`]) in the exact order the sequential
/// frontier would have emitted them. The stitched system is **identical**
/// to the sequential one — same pool ids, same node order, bit-equal
/// probabilities — which `tests/unfold_differential.rs` proves across the
/// seeded sweep.
///
/// The extra bounds (`M: Sync`, `P: Send`) let worker threads share the
/// model and return their shards; every model and probability type in this
/// workspace satisfies them.
///
/// # Errors
///
/// See [`UnfoldError`].
pub fn unfold_with_options<M, P>(
    model: &M,
    config: &UnfoldConfig,
    options: &UnfoldOptions,
) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P> + Sync,
    P: Probability + Send,
{
    Ok(unfold_to_builder_with_options(model, config, options)?.build_with(&options.build)?)
}

/// The builder-returning sibling of [`unfold_with_options`] (see
/// [`unfold_to_builder`] for why the two phases are exposed separately).
///
/// # Errors
///
/// See [`UnfoldError`] — everything except [`UnfoldError::Pps`], which can
/// only arise from the deferred build step.
pub fn unfold_to_builder_with_options<M, P>(
    model: &M,
    config: &UnfoldConfig,
    options: &UnfoldOptions,
) -> Result<PpsBuilder<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P> + Sync,
    P: Probability + Send,
{
    let n_agents = model.n_agents();
    let initial = model.initial_states();
    validate_distribution(&initial).map_err(|detail| UnfoldError::BadModelDistribution {
        origin: "initial_states",
        detail,
    })?;
    // `None` resolves to sequential (see `UnfoldOptions::parallel_subtrees`
    // — pre-unfold there is no tree-size signal to gate on, and spawn
    // overhead beats the win on every workload measured so far).
    // `Some(true)` opts into the worker path whenever there are two
    // subtrees to partition *and* more than one core to run them on — on
    // a single core the workers cannot overlap and are pure overhead, so
    // the sequential pass (bit-identical by the stitching contract) runs
    // instead.
    let parallel = available_cores() > 1 && options.parallel_subtrees.unwrap_or(false);
    if !parallel || initial.len() < 2 {
        // Nothing to partition (or parallelism declined): run the
        // sequential pass on the already-validated prior.
        return unfold_sequential(model, n_agents, initial, config);
    }

    let n_initial = initial.len();
    if n_initial > config.max_nodes {
        return Err(UnfoldError::TooLarge {
            max_nodes: config.max_nodes,
        });
    }

    // The stitched builder: the root and every initial node, in prior
    // order — exactly the nodes the sequential pass creates before its
    // first expansion.
    let mut builder = PpsBuilder::<M::Global, P>::new(n_agents);
    let mut graft_points: Vec<NodeId> = Vec::with_capacity(n_initial);
    for (state, p) in &initial {
        let sid = builder.intern(state.clone());
        graft_points.push(builder.initial_interned(sid, p.clone())?);
    }

    // One worker shard per initial state, strided over at most
    // `available_cores` threads. Each shard is a complete miniature
    // unfold — own builder, own pool, own memo, own scratch — of one
    // depth-1 subtree, seeded with the sequential pass's pre-subtree node
    // count so the first-processed subtree sees exactly the budget the
    // sequential pass would give it.
    type Shard<G, P2> = Result<(PpsBuilder<G, P2>, usize), UnfoldError>;
    let n_workers = available_cores().min(n_initial);
    let mut shards: Vec<Option<Shard<M::Global, P>>> = (0..n_initial).map(|_| None).collect();
    // Strided pre-partition: worker `w` owns initial states `w, w + n, …`
    // (owned clones, so workers need no shared access to `P`).
    let mut work: Vec<Vec<(usize, M::Global, P)>> = (0..n_workers).map(|_| Vec::new()).collect();
    for (i, (state, p)) in initial.into_iter().enumerate() {
        work[i % n_workers].push((i, state, p));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|items| {
                scope.spawn(move || {
                    items
                        .into_iter()
                        .map(|(i, state, p)| {
                            (
                                i,
                                unfold_subtree(model, n_agents, state, p, n_initial, config),
                            )
                        })
                        .collect::<Vec<(usize, Shard<M::Global, P>)>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, shard) in handle.join().expect("unfold worker panicked") {
                shards[i] = Some(shard);
            }
        }
    });

    // Stitch in the sequential emission order: the frontier is processed
    // level by level, subtrees in prior order within each level, which is
    // exactly the interleaving `absorb_subtrees` reproduces from forward
    // shard order. The running node total re-imposes the global
    // `max_nodes` cap that each worker only saw locally.
    let mut total = n_initial;
    let mut collected = Vec::with_capacity(n_initial);
    for shard in &mut shards {
        let (shard, descendants) = shard.take().expect("every shard was produced")?;
        total += descendants;
        if total > config.max_nodes {
            return Err(UnfoldError::TooLarge {
                max_nodes: config.max_nodes,
            });
        }
        collected.push(shard);
    }
    builder.absorb_subtrees(&graft_points, collected);
    Ok(builder)
}

/// Unfolds the depth-1 subtree rooted at one initial state into a private
/// builder shard, returning it with its descendant count.
fn unfold_subtree<M, P>(
    model: &M,
    n_agents: u32,
    state: M::Global,
    prob: P,
    n_initial: usize,
    config: &UnfoldConfig,
) -> Result<(PpsBuilder<M::Global, P>, usize), UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let mut core = ExpansionCore::new(model, n_agents);
    let mut builder = PpsBuilder::new(n_agents);
    let sid = builder.intern(state);
    let id = builder.initial_interned(sid, prob)?;
    // Count as if every initial node were already emitted (the sequential
    // pass has emitted all of them before expanding any subtree).
    core.node_count = n_initial;
    if !model.is_terminal(builder.state(sid), 0) {
        core.frontier.push((id, sid));
    }
    core.run_levels(&mut builder, 0, config.horizon, config)?;
    Ok((builder, core.node_count - n_initial))
}

/// Sentinel for "no memoized expansion" in [`ExpansionCore`]'s dense memo
/// rows.
const EXPANSION_NONE: u32 = u32::MAX;
/// Total-cell budget across the dense memo rows; keys past it spill into
/// an ordinary hash map (see [`ExpansionCore::memo_insert`]).
const DENSE_MEMO_BUDGET: usize = 1 << 20;

/// The append sink of the expansion loop. Both tree-construction modes —
/// the initial unfold filling a [`PpsBuilder`] and incremental horizon
/// growth appending through a [`PpsExtender`] — receive nodes through
/// this interface, so one expansion engine ([`ExpansionCore`]) serves
/// both and the two cannot drift apart.
trait ExpandTarget<G: GlobalState, P: Probability> {
    /// Interns a global state (see [`PpsBuilder::intern`]).
    fn intern(&mut self, state: G) -> StateId;
    /// Resolves an interned state id.
    fn state(&self, id: StateId) -> &G;
    /// Appends one child of `parent` (see [`PpsBuilder::child_interned`]).
    fn child_interned(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError>;
    /// Bulk-appends `count` children replayed from a contiguous template
    /// range (see [`PpsBuilder::children_replayed`]).
    fn children_replayed(&mut self, parent: NodeId, first_template: NodeId, count: usize)
        -> NodeId;
    /// Marks a node's children as a memoized `(state, time)` replay (see
    /// [`PpsBuilder::mark_children_shared`]).
    fn mark_children_shared(&mut self, node: NodeId, state: StateId, time: Time);
}

impl<G: GlobalState, P: Probability> ExpandTarget<G, P> for PpsBuilder<G, P> {
    fn intern(&mut self, state: G) -> StateId {
        PpsBuilder::intern(self, state)
    }

    fn state(&self, id: StateId) -> &G {
        PpsBuilder::state(self, id)
    }

    fn child_interned(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        PpsBuilder::child_interned(self, parent, state, prob, actions)
    }

    fn children_replayed(
        &mut self,
        parent: NodeId,
        first_template: NodeId,
        count: usize,
    ) -> NodeId {
        PpsBuilder::children_replayed(self, parent, first_template, count)
    }

    fn mark_children_shared(&mut self, node: NodeId, state: StateId, time: Time) {
        PpsBuilder::mark_children_shared(self, node, state, time);
    }
}

impl<G: GlobalState, P: Probability> ExpandTarget<G, P> for PpsExtender<G, P> {
    fn intern(&mut self, state: G) -> StateId {
        PpsExtender::intern(self, state)
    }

    fn state(&self, id: StateId) -> &G {
        PpsExtender::state(self, id)
    }

    fn child_interned(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        self.append_child(parent, state, prob, actions)
    }

    fn children_replayed(
        &mut self,
        parent: NodeId,
        first_template: NodeId,
        count: usize,
    ) -> NodeId {
        self.append_children_replayed(parent, first_template, count)
    }

    fn mark_children_shared(&mut self, node: NodeId, state: StateId, time: Time) {
        self.mark_level_children_shared(node, state, time);
    }
}

/// The expansion engine: the frontier and every reusable buffer of the
/// expansion loop, kept separate from the tree being filled (the
/// [`ExpandTarget`] sink) so the same engine can drive both an initial
/// unfold and later incremental growth. The sequential entry points run
/// one engine over the whole frontier; the parallel path runs one per
/// depth-1 subtree; a retained [`Unfolder`] keeps its engine — memo,
/// scratch, frontier and all — alive across horizon extensions.
///
/// The frontier is processed strictly in **level order** (all of time `t`
/// before any of time `t + 1`), which makes every horizon-`h` tree a
/// prefix of the horizon-`h + 1` tree and is what grounds the
/// grown-equals-rebuilt bit-identity contract.
///
/// Interning makes repeated work *visible*: two frontier nodes carrying
/// the same `(StateId, time)` expand to bit-identical successor lists
/// (the model's methods are pure functions of the state and time), so the
/// merged expansion is computed once per distinct pair and replayed for
/// every further node that reaches it. Unfolded trees revisit states
/// heavily — merging and environment branching both funnel into shared
/// states — which makes this the main saving of the interned pipeline.
/// Alongside each successor list the memo keeps the sink nodes of
/// the *first* emission: replays go through the sink's
/// `children_replayed` fast path (state, probability, and actions shared
/// from the template node — no per-edge re-validation, no copies).
/// Memo keys are dense (`time × StateId`), so the memo is a grown-on-demand
/// flat table probed with two array reads per node, not a hash map —
/// bounded by a total-cell budget so deep, state-diverse models (where
/// `time × states` is quadratic in tree size) cannot blow up memory:
/// keys past the budget spill into an ordinary hash map.
struct ExpansionCore<'m, M: ProtocolModel<P>, P: Probability> {
    model: &'m M,
    n_agents: u32,
    /// State nodes emitted so far (the phantom root is not counted).
    node_count: usize,
    /// The current level's nodes still to expand, all at one time:
    /// (sink node, interned state). States live once in the sink's pool;
    /// the frontier carries copyable ids, never clones. Only non-terminal
    /// nodes ever enter (their `is_terminal` is consulted exactly once,
    /// when they are pushed).
    frontier: Vec<(NodeId, StateId)>,
    /// The next level's frontier, filled while the current one expands.
    next: Vec<(NodeId, StateId)>,
    // --- `(state, time)` expansion memo ---
    expansion_rows: Vec<Vec<u32>>,
    expansion_spill: HashMap<(StateId, u32), u32, FxBuildHasher>,
    dense_memo_cells: usize,
    /// Memoized expansions: the merged successor list plus the id of the
    /// first child node of the expansion's first emission (children are
    /// inserted back to back, so `(first, successors.len())` names the
    /// whole contiguous template range for bulk replay).
    expansions: Vec<(Successors<P>, NodeId)>,
    /// Memo keys inserted during the level currently expanding — the undo
    /// log that lets a failed extension level roll the memo back
    /// ([`ExpansionCore::rollback_level`]).
    memo_added: Vec<(StateId, u32)>,
    // --- per-expansion scratch, cleared (not reallocated) per miss ---
    /// Each agent's move distribution, filled through
    /// [`ProtocolModel::moves_into`].
    per_agent: Vec<Vec<(M::Move, P)>>,
    /// Merge probe: hash of `(actions, successor id)` → candidate slots.
    index: HashMap<u64, Vec<usize>, FxBuildHasher>,
    /// The joint move under construction (odometer over `per_agent`).
    joint: Vec<M::Move>,
    /// Odometer counters, one per agent.
    counters: Vec<usize>,
    /// The action labels of the joint move under construction.
    actions: Vec<(AgentId, ActionId)>,
    /// The environment's successor distribution, filled through
    /// [`ProtocolModel::transition_into`].
    outcomes: Vec<(M::Global, P)>,
}

impl<M, P> Clone for ExpansionCore<'_, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    fn clone(&self) -> Self {
        ExpansionCore {
            model: self.model,
            n_agents: self.n_agents,
            node_count: self.node_count,
            frontier: self.frontier.clone(),
            next: self.next.clone(),
            expansion_rows: self.expansion_rows.clone(),
            expansion_spill: self.expansion_spill.clone(),
            dense_memo_cells: self.dense_memo_cells,
            expansions: self.expansions.clone(),
            memo_added: self.memo_added.clone(),
            per_agent: self.per_agent.clone(),
            index: self.index.clone(),
            joint: self.joint.clone(),
            counters: self.counters.clone(),
            actions: self.actions.clone(),
            outcomes: self.outcomes.clone(),
        }
    }
}

impl<'m, M, P> ExpansionCore<'m, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    fn new(model: &'m M, n_agents: u32) -> Self {
        ExpansionCore {
            model,
            n_agents,
            node_count: 0,
            frontier: Vec::new(),
            next: Vec::new(),
            expansion_rows: Vec::new(),
            expansion_spill: HashMap::default(),
            dense_memo_cells: 0,
            expansions: Vec::new(),
            memo_added: Vec::new(),
            per_agent: (0..n_agents).map(|_| Vec::new()).collect(),
            index: HashMap::default(),
            joint: Vec::with_capacity(n_agents as usize),
            counters: vec![0; n_agents as usize],
            actions: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// Seeds a pre-validated prior into a fresh builder and the level-0
    /// frontier.
    fn seed(
        &mut self,
        builder: &mut PpsBuilder<M::Global, P>,
        initial: Vec<(M::Global, P)>,
    ) -> Result<(), UnfoldError> {
        for (state, p) in initial {
            let sid = builder.intern(state);
            let id = builder.initial_interned(sid, p)?;
            self.node_count += 1;
            if !self.model.is_terminal(builder.state(sid), 0) {
                self.frontier.push((id, sid));
            }
        }
        Ok(())
    }

    fn memo_get(&self, sid: StateId, time: u32) -> u32 {
        let slot = self
            .expansion_rows
            .get(time as usize)
            .and_then(|row| row.get(sid.index()))
            .copied()
            .unwrap_or(EXPANSION_NONE);
        if slot == EXPANSION_NONE && !self.expansion_spill.is_empty() {
            return self
                .expansion_spill
                .get(&(sid, time))
                .copied()
                .unwrap_or(EXPANSION_NONE);
        }
        slot
    }

    fn memo_insert(&mut self, sid: StateId, time: u32, slot: u32) {
        self.memo_added.push((sid, time));
        if self.expansion_rows.len() <= time as usize {
            self.expansion_rows.resize_with(time as usize + 1, Vec::new);
        }
        let row = &mut self.expansion_rows[time as usize];
        if sid.index() < row.len() {
            row[sid.index()] = slot;
        } else {
            let grow = sid.index() + 1 - row.len();
            if self.dense_memo_cells + grow <= DENSE_MEMO_BUDGET {
                self.dense_memo_cells += grow;
                row.resize(sid.index() + 1, EXPANSION_NONE);
                row[sid.index()] = slot;
            } else {
                self.expansion_spill.insert((sid, time), slot);
            }
        }
    }

    /// Expands level by level until the frontier empties or `cap` is
    /// reached, returning the time the frontier stopped at. Entered with
    /// the frontier sitting at `time`; every level is expanded atomically
    /// ([`ExpansionCore::expand_level`]).
    fn run_levels<T: ExpandTarget<M::Global, P>>(
        &mut self,
        sink: &mut T,
        mut time: Time,
        cap: Option<Time>,
        config: &UnfoldConfig,
    ) -> Result<Time, UnfoldError> {
        while !self.frontier.is_empty() && cap != Some(time) {
            if let Some(d) = config.max_depth {
                if time >= d {
                    return Err(UnfoldError::DepthExceeded { max_depth: d });
                }
            }
            self.expand_level(sink, time, config, None)?;
            self.promote_level();
            time += 1;
        }
        Ok(time)
    }

    /// Expands every node of the current frontier (all at `time`) into
    /// `sink`, collecting the next level's frontier in `self.next`. The
    /// current frontier is left intact in both outcomes — the caller
    /// promotes the new level ([`ExpansionCore::promote_level`]) once the
    /// sink has accepted it, which is what lets a failed
    /// [`PpsExtender::commit_level`] roll back without a frontier
    /// snapshot. On error the caller rolls the engine back
    /// ([`ExpansionCore::rollback_level`]); the sink is the caller's to
    /// unwind. When `cancel` is set, the token is polled once per
    /// frontier node and trips through the same error path as a model
    /// failure ([`UnfoldError::Cancelled`]).
    fn expand_level<T: ExpandTarget<M::Global, P>>(
        &mut self,
        sink: &mut T,
        time: Time,
        config: &UnfoldConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<(), UnfoldError> {
        debug_assert!(self.next.is_empty());
        self.memo_added.clear();
        let mut i = 0;
        while i < self.frontier.len() {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(UnfoldError::Cancelled);
                }
            }
            let (node, sid) = self.frontier[i];
            i += 1;
            let memo_slot = self.memo_get(sid, time);
            if memo_slot != EXPANSION_NONE {
                let (successors, first_template) = &self.expansions[memo_slot as usize];
                let count = successors.len();
                self.node_count += count;
                if self.node_count > config.max_nodes {
                    return Err(UnfoldError::TooLarge {
                        max_nodes: config.max_nodes,
                    });
                }
                // One bulk column copy for the whole expansion instead of
                // `count` interleaved pushes.
                let base = sink.children_replayed(node, *first_template, count);
                for (k, (succ_id, _, _)) in successors.iter().enumerate() {
                    if !self.model.is_terminal(sink.state(*succ_id), time + 1) {
                        self.next.push((NodeId(base.0 + k as u32), *succ_id));
                    }
                }
            } else {
                self.expand(sink, node, sid, time, config)?;
            }
            // Every expanded node's children are (re)played from the
            // memoized `(state, time)` successor list, so the build pass
            // validates the outgoing distribution once per distinct pair
            // instead of once per node.
            sink.mark_children_shared(node, sid, time);
        }
        Ok(())
    }

    /// Retires the expanded frontier and installs the level
    /// [`ExpansionCore::expand_level`] collected in its place.
    fn promote_level(&mut self) {
        self.frontier.clear();
        std::mem::swap(&mut self.frontier, &mut self.next);
    }

    /// Rolls the engine back to the state it held before the failed (or
    /// sink-rejected) [`ExpansionCore::expand_level`]: discards the
    /// half-built next level (the expanded frontier is still in place —
    /// it only retires at [`ExpansionCore::promote_level`]), unwinds the
    /// unwinds the memo via the per-level undo log, truncates the
    /// expansion arena (inserts and pushes are 1:1), and restores the
    /// node count. Dense memo rows keep their grown capacity; only the
    /// slots are cleared.
    fn rollback_level(&mut self, node_count: usize) {
        self.next.clear();
        self.node_count = node_count;
        let kept = self.expansions.len() - self.memo_added.len();
        self.expansions.truncate(kept);
        for &(sid, time) in &self.memo_added {
            let dense = self
                .expansion_rows
                .get_mut(time as usize)
                .and_then(|row| row.get_mut(sid.index()));
            match dense {
                Some(slot) if *slot != EXPANSION_NONE => *slot = EXPANSION_NONE,
                _ => {
                    self.expansion_spill.remove(&(sid, time));
                }
            }
        }
        self.memo_added.clear();
    }

    /// Computes a fresh expansion of `(sid, time)`, emits its children
    /// under `node`, and memoizes the successor list.
    fn expand<T: ExpandTarget<M::Global, P>>(
        &mut self,
        sink: &mut T,
        node: NodeId,
        sid: StateId,
        time: u32,
        config: &UnfoldConfig,
    ) -> Result<(), UnfoldError> {
        match failpoint::check("unfold.expand") {
            None => {}
            Some(Fault::Error) => {
                return Err(UnfoldError::BadModelDistribution {
                    origin: "failpoint",
                    detail: "injected fault at unfold.expand".to_owned(),
                });
            }
            Some(Fault::Cancel) => return Err(UnfoldError::Cancelled),
            Some(Fault::Panic) => panic!("failpoint unfold.expand: injected panic"),
        }
        // Gather each agent's mixed move distribution from its local
        // state, into the per-agent scratch buffers.
        for a in 0..self.n_agents {
            let agent = AgentId(a);
            let local = sink.state(sid).local(agent);
            let dist = &mut self.per_agent[a as usize];
            dist.clear();
            self.model.moves_into(agent, &local, time, dist);
            validate_distribution(dist).map_err(|detail| UnfoldError::BadModelDistribution {
                origin: "moves",
                detail,
            })?;
        }

        // Enumerate the cartesian product of joint moves (an odometer
        // over the per-agent scratch — each joint move is assembled in
        // one reused buffer), resolve each via the environment, and
        // merge identical successors. Each successor is interned first
        // (one hash + `Eq` confirmation inside the pool), so the merge
        // index compares `(actions, StateId)` — a repeated successor
        // costs one hash and one id comparison, with no state clone or
        // allocation at all.
        let mut successors: Successors<P> = Vec::new();
        self.index.clear();
        for c in &mut self.counters {
            *c = 0;
        }
        loop {
            self.joint.clear();
            self.actions.clear();
            // Deterministic moves (probability one — the common case)
            // leave the accumulator untouched instead of paying a
            // multiply-by-one per agent per joint move.
            let mut p_joint: Option<P> = None;
            for (i, &c) in self.counters.iter().enumerate() {
                let (mv, p) = &self.per_agent[i][c];
                if let Some(act) = self.model.action_of(mv) {
                    self.actions.push((AgentId(i as u32), act));
                }
                self.joint.push(mv.clone());
                if !p.is_one() {
                    p_joint = Some(match p_joint {
                        None => p.clone(),
                        Some(q) => q.mul(p),
                    });
                }
            }
            self.outcomes.clear();
            self.model
                .transition_into(sink.state(sid), &self.joint, time, &mut self.outcomes);
            validate_distribution(&self.outcomes).map_err(|detail| {
                UnfoldError::BadModelDistribution {
                    origin: "transition",
                    detail,
                }
            })?;
            for (succ, p_env) in self.outcomes.drain(..) {
                // `p_env` is owned here, so the all-deterministic case
                // forwards it without a clone or a multiply.
                let p = match &p_joint {
                    None => p_env,
                    Some(q) => q.mul(&p_env),
                };
                let succ_id = sink.intern(succ);
                let mut hasher = FxHasher::default();
                self.actions.hash(&mut hasher);
                succ_id.hash(&mut hasher);
                let bucket = self.index.entry(hasher.finish()).or_default();
                match bucket
                    .iter()
                    .find(|&&i| successors[i].0 == succ_id && successors[i].1 == self.actions)
                {
                    Some(&i) => {
                        successors[i].2.add_assign(&p);
                    }
                    None => {
                        bucket.push(successors.len());
                        successors.push((succ_id, self.actions.clone(), p));
                    }
                }
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == self.counters.len() {
                    return self.finish_expansion(sink, node, sid, time, successors, config);
                }
                self.counters[i] += 1;
                if self.counters[i] < self.per_agent[i].len() {
                    break;
                }
                self.counters[i] = 0;
                i += 1;
            }
        }
    }

    /// Emits the merged successor list under `node` and memoizes it.
    fn finish_expansion<T: ExpandTarget<M::Global, P>>(
        &mut self,
        sink: &mut T,
        node: NodeId,
        sid: StateId,
        time: u32,
        successors: Successors<P>,
        config: &UnfoldConfig,
    ) -> Result<(), UnfoldError> {
        let mut first_child = NodeId::ROOT;
        for (i, (succ_id, actions, p)) in successors.iter().enumerate() {
            self.node_count += 1;
            if self.node_count > config.max_nodes {
                return Err(UnfoldError::TooLarge {
                    max_nodes: config.max_nodes,
                });
            }
            let child = sink.child_interned(node, *succ_id, p.clone(), actions)?;
            if i == 0 {
                first_child = child;
            }
            if !self.model.is_terminal(sink.state(*succ_id), time + 1) {
                self.next.push((child, *succ_id));
            }
        }
        let slot = self.expansions.len() as u32;
        self.memo_insert(sid, time, slot);
        self.expansions.push((successors, first_child));
        Ok(())
    }
}

/// A retained unfolding session supporting **incremental horizon
/// extension**: the model, the `(state, time)` expansion memo, the
/// scratch buffers, the [`StatePool`](pak_core::intern::StatePool), the
/// per-agent local pools, and the leaf frontier all stay alive across
/// calls, so growing a tree from horizon `h` to `h + 1`
/// ([`Unfolder::extend_horizon`]) expands only the previous leaf frontier
/// and incrementally repairs the derived run/cell indexes through a
/// [`PpsExtender`] — instead of re-running the whole unfold + build
/// pipeline.
///
/// The grown system is **bit-identical** — pool ids, node order, run
/// probabilities, cells, action events — to a from-scratch unfold of the
/// same model capped at the same horizon
/// (`UnfoldConfig { horizon: Some(h), .. }`): a contract the differential
/// harness proves across the seeded sweep and every `pak-systems`
/// protocol. On error, `extend_horizon` rolls both the engine and the
/// tree back to the previous horizon and the handle stays usable.
///
/// # Examples
///
/// ```
/// use pak_protocol::model::CoinModel;
/// use pak_protocol::unfold::{UnfoldConfig, Unfolder};
/// use pak_num::Rational;
///
/// let m = CoinModel { heads_num: 1, heads_den: 2 };
/// // Build just the prior (horizon 0), then grow one level at a time.
/// let cfg = UnfoldConfig { horizon: Some(0), ..UnfoldConfig::default() };
/// let mut u = Unfolder::<_, Rational>::new(&m, cfg).unwrap();
/// assert_eq!(u.pps().num_nodes(), 3); // root λ + the two initial states
/// assert!(u.extend_horizon().unwrap());
/// assert_eq!(u.pps().num_nodes(), 5); // the coin resolves at time 1
/// assert!(!u.extend_horizon().unwrap()); // every path has terminated
/// assert_eq!(u.horizon(), 1);
/// ```
pub struct Unfolder<'m, M: ProtocolModel<P>, P: Probability> {
    config: UnfoldConfig,
    core: ExpansionCore<'m, M, P>,
    extender: PpsExtender<M::Global, P>,
    /// The time the retained frontier sits at: every level strictly below
    /// it has been expanded.
    horizon: Time,
}

impl<M, P> Clone for Unfolder<'_, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    fn clone(&self) -> Self {
        Unfolder {
            config: self.config.clone(),
            core: self.core.clone(),
            extender: self.extender.clone(),
            horizon: self.horizon,
        }
    }
}

impl<M, P> fmt::Debug for Unfolder<'_, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Unfolder")
            .field("horizon", &self.horizon)
            .field("num_nodes", &self.extender.pps().num_nodes())
            .field("frontier", &self.core.frontier.len())
            .finish_non_exhaustive()
    }
}

impl<'m, M, P> Unfolder<'m, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    /// Unfolds `model` up to `config.horizon` (or to exhaustion when it is
    /// `None`) and retains everything needed to grow further.
    ///
    /// # Errors
    ///
    /// See [`UnfoldError`].
    pub fn new(model: &'m M, config: UnfoldConfig) -> Result<Self, UnfoldError> {
        let n_agents = model.n_agents();
        let initial = model.initial_states();
        validate_distribution(&initial).map_err(|detail| UnfoldError::BadModelDistribution {
            origin: "initial_states",
            detail,
        })?;
        if initial.len() > config.max_nodes {
            return Err(UnfoldError::TooLarge {
                max_nodes: config.max_nodes,
            });
        }
        let mut core = ExpansionCore::new(model, n_agents);
        let mut builder = PpsBuilder::new(n_agents);
        core.seed(&mut builder, initial)?;
        let horizon = core.run_levels(&mut builder, 0, config.horizon, &config)?;
        let pps = builder.build()?;
        Ok(Unfolder {
            config,
            core,
            extender: PpsExtender::new(pps),
            horizon,
        })
    }

    /// The system unfolded so far. Valid (and queryable) after every
    /// successful call — extension repairs the indexes level by level.
    pub fn pps(&self) -> &Pps<M::Global, P> {
        self.extender.pps()
    }

    /// The horizon the tree currently stands at: the time of the retained
    /// frontier. Every level strictly below it is fully expanded; equals
    /// the final frontier time once growth is exhausted.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Whether the tree can still grow: true while the retained frontier
    /// is non-empty, false once every path has terminated.
    pub fn can_extend(&self) -> bool {
        !self.core.frontier.is_empty()
    }

    /// Grows the tree by one level: expands the retained leaf frontier
    /// (reusing the live `(state, time)` expansion memo), appends the new
    /// nodes, and incrementally repairs the run and cell indexes. Returns
    /// `Ok(true)` if a level was added, `Ok(false)` if every path had
    /// already terminated (the tree is complete; calling again stays
    /// `Ok(false)`).
    ///
    /// The result after `extend_horizon` is bit-identical to a
    /// from-scratch unfold capped one level deeper — see the type-level
    /// docs for the exactness contract.
    ///
    /// # Errors
    ///
    /// [`UnfoldError::TooLarge`], [`UnfoldError::DepthExceeded`],
    /// [`UnfoldError::BadModelDistribution`], or [`UnfoldError::Pps`],
    /// exactly as the equivalent from-scratch unfold would report them.
    /// On error the half-built level is rolled back — nodes, pool
    /// entries, memo inserts, frontier — and the handle remains usable at
    /// its previous horizon.
    pub fn extend_horizon(&mut self) -> Result<bool, UnfoldError> {
        self.extend_inner(None)
    }

    /// As [`Unfolder::extend_horizon`], polling `cancel` at the level
    /// boundary and once per frontier node inside the level.
    ///
    /// # Errors
    ///
    /// As [`Unfolder::extend_horizon`], plus [`UnfoldError::Cancelled`]
    /// when the token trips. Cancellation takes the same rollback path
    /// as a model error: the half-built level is unwound via the
    /// extender's level-abort protocol and the handle remains a valid,
    /// bit-identical tree at its pre-call horizon — a later retry (with
    /// a fresh token) reproduces the uninterrupted extension exactly.
    pub fn extend_horizon_with(&mut self, cancel: &CancelToken) -> Result<bool, UnfoldError> {
        self.extend_inner(Some(cancel))
    }

    fn extend_inner(&mut self, cancel: Option<&CancelToken>) -> Result<bool, UnfoldError> {
        if self.core.frontier.is_empty() {
            return Ok(false);
        }
        match failpoint::check("extend.level") {
            None => {}
            Some(Fault::Error) => {
                return Err(UnfoldError::BadModelDistribution {
                    origin: "failpoint",
                    detail: "injected fault at extend.level".to_owned(),
                });
            }
            Some(Fault::Cancel) => return Err(UnfoldError::Cancelled),
            Some(Fault::Panic) => panic!("failpoint extend.level: injected panic"),
        }
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return Err(UnfoldError::Cancelled);
            }
        }
        if let Some(d) = self.config.max_depth {
            if self.horizon >= d {
                return Err(UnfoldError::DepthExceeded { max_depth: d });
            }
        }
        let node_count = self.core.node_count;
        self.extender.begin_level();
        if let Err(e) =
            self.core
                .expand_level(&mut self.extender, self.horizon, &self.config, cancel)
        {
            self.extender.abort_level();
            self.core.rollback_level(node_count);
            return Err(e);
        }
        if let Err(e) = self.extender.commit_level() {
            // Validation failure: commit_level has already unwound the
            // appended level; the old frontier is still in place (levels
            // promote only after a successful commit), so rolling back
            // the engine restores everything.
            self.core.rollback_level(node_count);
            return Err(UnfoldError::Pps(e));
        }
        self.core.promote_level();
        self.horizon += 1;
        Ok(true)
    }

    /// Consumes the handle, returning the grown system.
    pub fn into_pps(self) -> Pps<M::Global, P> {
        self.extender.into_pps()
    }
}

/// Iterator over the cartesian product of per-agent move distributions,
/// yielding each joint move with its product probability.
///
/// For distributions of sizes `k_1, …, k_n` the iterator yields exactly
/// `k_1 · k_2 · … · k_n` joint moves, and the yielded probabilities sum to
/// one whenever every input distribution does (the product distribution).
/// An empty list of distributions yields the single empty joint move with
/// probability one (the empty product); any *individual* empty
/// distribution yields nothing (there is no joint move to form).
///
/// # Examples
///
/// ```
/// use pak_protocol::unfold::CartesianMoves;
/// use pak_num::Rational;
/// use pak_core::prob::Probability;
///
/// let d = vec![
///     ("a", Rational::from_ratio(1, 2)),
///     ("b", Rational::from_ratio(1, 2)),
/// ];
/// let all: Vec<_> = CartesianMoves::new(&[d.clone(), d]).collect();
/// assert_eq!(all.len(), 4);
/// let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
/// assert!(total.is_one());
/// ```
#[derive(Debug)]
pub struct CartesianMoves<'a, T, P> {
    dists: &'a [Vec<(T, P)>],
    counters: Vec<usize>,
    done: bool,
}

impl<'a, T, P> CartesianMoves<'a, T, P> {
    /// Creates the product iterator over `dists`.
    pub fn new(dists: &'a [Vec<(T, P)>]) -> Self {
        CartesianMoves {
            dists,
            counters: vec![0; dists.len()],
            done: dists.iter().any(Vec::is_empty),
        }
    }
}

impl<T: Clone, P: Probability> Iterator for CartesianMoves<'_, T, P> {
    type Item = (Vec<T>, P);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut joint = Vec::with_capacity(self.dists.len());
        let mut prob = P::one();
        for (i, &c) in self.counters.iter().enumerate() {
            let (mv, p) = &self.dists[i][c];
            joint.push(mv.clone());
            prob = prob.mul(p);
        }
        // Advance odometer.
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] < self.dists[i].len() {
                break;
            }
            self.counters[i] = 0;
            i += 1;
        }
        Some((joint, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CoinModel, TableModel, COIN_ACT};
    use pak_core::fact::StateFact;
    use pak_core::prelude::*;
    use pak_num::Rational;

    #[test]
    fn coin_model_unfolds_to_two_runs() {
        let m = CoinModel {
            heads_num: 99,
            heads_den: 100,
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.measure(&pps.all_runs()).is_one());
        let heads = StateFact::new("heads", |g: &crate::model::CoinState| g.heads);
        let a = ActionAnalysis::new(&pps, AgentId(0), COIN_ACT, &heads).unwrap();
        assert_eq!(a.constraint_probability(), Rational::from_ratio(99, 100));
        // The blind agent's expected belief equals the prior (Theorem 6.2).
        assert_eq!(a.expected_belief(), Rational::from_ratio(99, 100));
    }

    #[test]
    fn cartesian_moves_enumerates_products() {
        let d1 = vec![
            ("a", Rational::from_ratio(1, 2)),
            ("b", Rational::from_ratio(1, 2)),
        ];
        let d2 = vec![
            ("x", Rational::from_ratio(1, 3)),
            ("y", Rational::from_ratio(1, 3)),
            ("z", Rational::from_ratio(1, 3)),
        ];
        let all: Vec<(Vec<&str>, Rational)> = CartesianMoves::new(&[d1, d2]).collect();
        assert_eq!(all.len(), 6);
        let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one());
    }

    #[test]
    fn cartesian_of_empty_list_is_unit() {
        let dists: Vec<Vec<((), Rational)>> = vec![];
        let all: Vec<(Vec<()>, Rational)> = CartesianMoves::new(&dists).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].1.is_one());
    }

    #[test]
    fn mixed_action_model_unfolds_figure1() {
        // Figure 1 via a table model: one agent, mixed α/α′ at time 0.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![(
                (0, 0, 0),
                vec![
                    (Some(ActionId(0)), Rational::from_ratio(1, 2)),
                    (Some(ActionId(1)), Rational::from_ratio(1, 2)),
                ],
            )],
            transitions: vec![],
            ..TableModel::default()
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.is_proper(AgentId(0), ActionId(0)));
        // The paper's Figure-1 pathology, via the protocol pipeline:
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &psi).unwrap();
        assert!(a.constraint_probability().is_zero());
        assert_eq!(a.min_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
    }

    #[test]
    fn merging_identical_successors() {
        // Environment flips two fair coins but the successor state only
        // records their XOR: 4 outcomes merge into 2 children.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![],
            transitions: vec![(
                (0, 0),
                vec![
                    (0, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (0, vec![0], Rational::from_ratio(1, 4)),
                ],
            )],
            ..TableModel::default()
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        for run in pps.run_ids() {
            assert_eq!(pps.run_probability(run), &Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn node_limit_enforced() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let cfg = UnfoldConfig {
            max_nodes: 2,
            max_depth: None,
            horizon: None,
        };
        let err = unfold_with::<_, Rational>(&m, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 2 }));
    }

    #[test]
    fn max_nodes_counts_state_nodes_exactly() {
        // The coin tree has exactly 4 state nodes (2 initial states, each
        // with one terminal child); the phantom root is not counted, so
        // max_nodes = 4 succeeds and max_nodes = 3 fails.
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let pps = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 4,
                max_depth: None,
                horizon: None,
            },
        )
        .unwrap();
        assert_eq!(pps.num_nodes(), 5); // 4 state nodes + the root λ
        let err = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 3,
                max_depth: None,
                horizon: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 3 }));
    }

    #[test]
    fn max_nodes_caps_initial_states_too() {
        // Two initial states with max_nodes = 1 must already fail at the
        // prior, not only when expanding children.
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let err = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 1,
                max_depth: None,
                horizon: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 1 }));
    }

    #[test]
    fn depth_cap_detects_nontermination() {
        // A model whose is_terminal never fires.
        #[derive(Debug)]
        struct Forever;
        impl ProtocolModel<Rational> for Forever {
            type Global = SimpleState;
            type Move = ();
            fn n_agents(&self) -> u32 {
                1
            }
            fn initial_states(&self) -> Vec<(SimpleState, Rational)> {
                vec![(SimpleState::zeroed(1), Rational::one())]
            }
            fn is_terminal(&self, _s: &SimpleState, _t: u32) -> bool {
                false
            }
            fn moves(&self, _a: AgentId, _l: &u64, _t: u32) -> Vec<((), Rational)> {
                vec![((), Rational::one())]
            }
            fn action_of(&self, _mv: &()) -> Option<ActionId> {
                None
            }
            fn transition(
                &self,
                s: &SimpleState,
                _m: &[()],
                _t: u32,
            ) -> Vec<(SimpleState, Rational)> {
                vec![(s.clone(), Rational::one())]
            }
        }
        let cfg = UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(8),
            horizon: None,
        };
        let err = unfold_with::<_, Rational>(&Forever, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::DepthExceeded { max_depth: 8 }));
    }

    #[test]
    fn parallel_unfold_is_identical_to_sequential() {
        use crate::generator::{random_model, RandomModelConfig};
        for seed in 0..6u64 {
            let model = random_model::<Rational>(seed * 31 + 5, &RandomModelConfig::default());
            let seq = unfold_with_options(
                &model,
                &UnfoldConfig::default(),
                &UnfoldOptions {
                    parallel_subtrees: Some(false),
                    ..UnfoldOptions::default()
                },
            )
            .unwrap();
            let par = unfold_with_options(
                &model,
                &UnfoldConfig::default(),
                &UnfoldOptions {
                    parallel_subtrees: Some(true),
                    ..UnfoldOptions::default()
                },
            )
            .unwrap();
            // Same pool, same ids: the stitched interning order must equal
            // the sequential one exactly.
            assert_eq!(seq.num_distinct_states(), par.num_distinct_states());
            for ((ids, s), (idp, p)) in seq.state_pool().iter().zip(par.state_pool().iter()) {
                assert_eq!(ids, idp, "seed {seed}");
                assert_eq!(s, p, "seed {seed}: pool state {ids}");
            }
            // Same nodes in the same order, bit-equal edge data.
            assert_eq!(seq.num_nodes(), par.num_nodes(), "seed {seed}");
            for n in (1..seq.num_nodes() as u32).map(NodeId) {
                assert_eq!(seq.parent(n), par.parent(n), "seed {seed}: parent of {n}");
                assert_eq!(
                    seq.node_state_id(n),
                    par.node_state_id(n),
                    "seed {seed}: state of {n}"
                );
                assert_eq!(
                    seq.node_time(n),
                    par.node_time(n),
                    "seed {seed}: time of {n}"
                );
            }
            // Same runs with bit-equal probabilities, same cells.
            assert_eq!(seq.num_runs(), par.num_runs(), "seed {seed}");
            for run in seq.run_ids() {
                assert_eq!(seq.nodes_of(run), par.nodes_of(run), "seed {seed}: {run}");
                assert_eq!(
                    seq.run_probability(run),
                    par.run_probability(run),
                    "seed {seed}: probability of {run}"
                );
            }
            assert_eq!(seq.num_cells(), par.num_cells(), "seed {seed}");
            for ((ids, cs), (idp, cp)) in seq.cells().zip(par.cells()) {
                assert_eq!(ids, idp, "seed {seed}");
                assert_eq!(cs, cp, "seed {seed}: cell {ids}");
            }
        }
    }

    #[test]
    fn parallel_unfold_single_initial_state_falls_back() {
        // One depth-1 subtree: nothing to partition; the request is
        // honoured by the sequential path and the result is unchanged.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 2,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        let par = unfold_with_options(
            &m,
            &UnfoldConfig::default(),
            &UnfoldOptions {
                parallel_subtrees: Some(true),
                ..UnfoldOptions::default()
            },
        )
        .unwrap();
        let seq = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(par.num_runs(), seq.num_runs());
        assert_eq!(par.num_nodes(), seq.num_nodes());
    }

    #[test]
    fn parallel_unfold_enforces_node_budget() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        // The coin tree has 4 state nodes across 2 subtrees: a budget of 3
        // fails in parallel exactly as it does sequentially.
        for budget in [1usize, 3] {
            let err = unfold_with_options::<_, Rational>(
                &m,
                &UnfoldConfig {
                    max_nodes: budget,
                    max_depth: None,
                    horizon: None,
                },
                &UnfoldOptions {
                    parallel_subtrees: Some(true),
                    ..UnfoldOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, UnfoldError::TooLarge { max_nodes } if max_nodes == budget),
                "budget {budget}: {err:?}"
            );
        }
        // And a budget of exactly 4 succeeds.
        let pps = unfold_with_options::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 4,
                max_depth: None,
                horizon: None,
            },
            &UnfoldOptions {
                parallel_subtrees: Some(true),
                ..UnfoldOptions::default()
            },
        )
        .unwrap();
        assert_eq!(pps.num_nodes(), 5);
    }

    #[test]
    fn horizon_cap_truncates_cleanly() {
        // A 3-step table model capped at horizon 1 keeps the time-1 nodes
        // as leaves and still builds a valid (queryable) system.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 3,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        let full = unfold::<_, Rational>(&m).unwrap();
        let capped = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                horizon: Some(1),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        assert_eq!(capped.horizon(), 1);
        assert!(full.horizon() > capped.horizon());
        assert!(capped.measure(&capped.all_runs()).is_one());
    }

    #[test]
    fn extend_horizon_matches_scratch_unfold() {
        // Grow 0 → exhaustion one level at a time; at each step the grown
        // system must match a from-scratch unfold capped at that horizon.
        let m: TableModel<Rational> = TableModel {
            n_agents: 2,
            initial: vec![
                (0, vec![0, 0], Rational::from_ratio(1, 3)),
                (1, vec![1, 0], Rational::from_ratio(2, 3)),
            ],
            horizon: 3,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        let mut u = Unfolder::<_, Rational>::new(
            &m,
            UnfoldConfig {
                horizon: Some(0),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        let mut h = 0;
        loop {
            let scratch = unfold_with::<_, Rational>(
                &m,
                &UnfoldConfig {
                    horizon: Some(h),
                    ..UnfoldConfig::default()
                },
            )
            .unwrap();
            let grown = u.pps();
            assert_eq!(grown.num_nodes(), scratch.num_nodes(), "h={h}");
            assert_eq!(grown.num_runs(), scratch.num_runs(), "h={h}");
            assert_eq!(grown.num_cells(), scratch.num_cells(), "h={h}");
            for run in scratch.run_ids() {
                assert_eq!(grown.nodes_of(run), scratch.nodes_of(run), "h={h}: {run}");
                assert_eq!(
                    grown.run_probability(run),
                    scratch.run_probability(run),
                    "h={h}: {run}"
                );
            }
            if !u.extend_horizon().unwrap() {
                break;
            }
            h += 1;
        }
        assert_eq!(u.horizon(), 3);
        assert!(!u.can_extend());
    }

    #[test]
    fn extend_horizon_respects_node_budget() {
        // Growing past the cap fails cleanly and leaves the handle usable
        // at its previous horizon.
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut u = Unfolder::<_, Rational>::new(
            &m,
            UnfoldConfig {
                max_nodes: 2,
                max_depth: None,
                horizon: Some(0),
            },
        )
        .unwrap();
        let nodes_before = u.pps().num_nodes();
        let err = u.extend_horizon().unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 2 }));
        assert_eq!(u.horizon(), 0);
        assert_eq!(u.pps().num_nodes(), nodes_before);
        // The same failed extension is still reported on retry…
        assert!(u.extend_horizon().is_err());
        // …and the retained tree still answers queries.
        assert!(u.pps().measure(&u.pps().all_runs()).is_one());
    }

    #[test]
    fn extend_horizon_respects_depth_cap() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut u = Unfolder::<_, Rational>::new(
            &m,
            UnfoldConfig {
                max_depth: Some(0),
                horizon: Some(0),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        let err = u.extend_horizon().unwrap_err();
        assert!(matches!(err, UnfoldError::DepthExceeded { max_depth: 0 }));
        assert_eq!(u.horizon(), 0);
    }

    #[test]
    fn bad_model_distribution_reported() {
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::from_ratio(1, 2))], // sums to ½
            horizon: 1,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        let err = unfold::<_, Rational>(&m).unwrap_err();
        assert!(matches!(
            err,
            UnfoldError::BadModelDistribution {
                origin: "initial_states",
                ..
            }
        ));
        assert!(err.to_string().contains("initial_states"));
    }
}
