//! Bounded-horizon unfolding of a protocol into a pps.
//!
//! Given a [`ProtocolModel`], the unfolder
//! enumerates every reachable branching — initial states, each agent's mixed
//! move choices (the cartesian product across agents), and the environment's
//! probabilistic resolution — and materialises the paper's tree `T = (V, E,
//! π)` as a validated [`Pps`]. Successor states that coincide are *merged*
//! (their probabilities added): this keeps trees small (e.g. losing message
//! copy 1 vs copy 2 of an identical payload leads to the same global state)
//! and changes none of the measures, local states, or action events the
//! theory depends on.
//!
//! # Merge contract
//!
//! Two successors of a node are merged exactly when their joint-action
//! labels and their global states both compare equal. Every successor
//! state is first *interned* into the builder's
//! [`StatePool`](pak_core::intern::StatePool) — a hash-keyed arena storing
//! each distinct state once — so the merge probe compares copyable
//! [`StateId`]s instead of full states, and no state is ever cloned into
//! the frontier or the tree. This is why [`GlobalState`] and
//! [`ProtocolModel::Move`] require `Eq + Hash`. The contract on
//! implementors is the standard one: equal states must hash equal.
//! Equality that distinguishes more (or fewer) states is *safe* — it only
//! changes the size of the unfolded tree, never any run probability, local
//! state, or action event — but `Hash`/`Eq` incoherence (equal values
//! hashing differently) would leave duplicate children carrying split
//! probability mass, so the derived implementations are strongly
//! recommended.
//!
//! # Purity contract
//!
//! The unfolder treats [`ProtocolModel::moves`] and
//! [`ProtocolModel::transition`] as *pure functions* of their arguments:
//! because interning makes state identity explicit, expansions are
//! memoized per `(state, time)` and replayed for every tree node that
//! revisits the pair, so the model's methods may be called once where a
//! naive enumeration would call them many times. Models whose
//! distributions depend on hidden mutable state would produce unspecified
//! (though still validated) trees — no model in this workspace does.
//!
//! The memo is also threaded into the *build* pass: each expanded node is
//! marked with its `(state, time)` key
//! ([`PpsBuilder::mark_children_shared`]), so validation sums each
//! distinct expansion's outgoing distribution once instead of re-checking
//! every replayed node with exact arithmetic.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use pak_core::error::PpsError;
use pak_core::hash::{FxBuildHasher, FxHasher};
use pak_core::ids::{ActionId, AgentId, NodeId, StateId};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

use crate::model::{validate_distribution, ProtocolModel};

/// A node's merged successor list: interned state, joint-action labels,
/// and accumulated probability per distinct `(actions, state)` child.
type Successors<P> = Vec<(StateId, Vec<(AgentId, ActionId)>, P)>;

/// Limits and options for unfolding.
#[derive(Debug, Clone)]
pub struct UnfoldConfig {
    /// Hard cap on the number of global-state tree nodes (the phantom root
    /// `λ` is not counted); unfolding fails rather than exhausting memory.
    /// A model whose tree has exactly `N` state nodes unfolds successfully
    /// with `max_nodes = N` and fails with `N - 1`. Defaults to `1 << 20`.
    pub max_nodes: usize,
    /// Optional hard cap on depth (a safety net for models whose
    /// `is_terminal` never fires). `None` trusts the model.
    pub max_depth: Option<u32>,
}

impl Default for UnfoldConfig {
    fn default() -> Self {
        UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(64),
        }
    }
}

/// Error produced by [`unfold`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The model emitted a malformed distribution (empty, non-positive
    /// entry, or not summing to one).
    BadModelDistribution {
        /// Where the bad distribution came from.
        origin: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// The unfolding exceeded [`UnfoldConfig::max_nodes`].
    TooLarge {
        /// The configured limit.
        max_nodes: usize,
    },
    /// The depth cap was hit before every path terminated.
    DepthExceeded {
        /// The configured limit.
        max_depth: u32,
    },
    /// The resulting tree failed pps validation (should not happen for
    /// well-formed models; indicates a model bug such as f64 distributions
    /// drifting outside tolerance).
    Pps(PpsError),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::BadModelDistribution { origin, detail } => {
                write!(f, "model produced a bad distribution in {origin}: {detail}")
            }
            UnfoldError::TooLarge { max_nodes } => {
                write!(
                    f,
                    "unfolding exceeded the configured limit of {max_nodes} nodes"
                )
            }
            UnfoldError::DepthExceeded { max_depth } => {
                write!(
                    f,
                    "unfolding exceeded the depth cap of {max_depth} without terminating"
                )
            }
            UnfoldError::Pps(e) => write!(f, "unfolded tree failed validation: {e}"),
        }
    }
}

impl std::error::Error for UnfoldError {}

impl From<PpsError> for UnfoldError {
    fn from(e: PpsError) -> Self {
        UnfoldError::Pps(e)
    }
}

/// Unfolds a protocol model into a purely probabilistic system with the
/// default limits.
///
/// # Errors
///
/// See [`UnfoldError`].
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_protocol::unfold::unfold;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let m = CoinModel { heads_num: 99, heads_den: 100 };
/// let pps = unfold::<_, Rational>(&m).unwrap();
/// assert_eq!(pps.num_runs(), 2);
/// assert!(pps.is_proper(AgentId(0), COIN_ACT));
/// ```
pub fn unfold<M, P>(model: &M) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    unfold_with(model, &UnfoldConfig::default())
}

/// Unfolds a protocol model with explicit limits.
///
/// # Errors
///
/// See [`UnfoldError`].
pub fn unfold_with<M, P>(model: &M, config: &UnfoldConfig) -> Result<Pps<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    Ok(unfold_to_builder(model, config)?.build()?)
}

/// Unfolds a protocol model into the raw (not yet validated) tree,
/// stopping just before [`PpsBuilder::build`].
///
/// This exposes the pipeline's two phases separately: tree construction
/// (this function) and the validation/indexing build pass (`build`, or
/// [`PpsBuilder::build_with`] for explicit
/// [`BuildOptions`](pak_core::pps::BuildOptions)). Profilers use it to
/// attribute time per phase; the differential harness uses it to prove
/// the sequential and threaded build paths bit-identical on one tree.
///
/// # Errors
///
/// See [`UnfoldError`] — everything except [`UnfoldError::Pps`], which can
/// only arise from the deferred build step.
pub fn unfold_to_builder<M, P>(
    model: &M,
    config: &UnfoldConfig,
) -> Result<PpsBuilder<M::Global, P>, UnfoldError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let n_agents = model.n_agents();
    let mut builder = PpsBuilder::<M::Global, P>::new(n_agents);
    // State nodes only: the phantom root is not counted against max_nodes.
    let mut node_count = 0usize;

    let initial = model.initial_states();
    validate_distribution(&initial).map_err(|detail| UnfoldError::BadModelDistribution {
        origin: "initial_states",
        detail,
    })?;

    // Frontier of nodes still to expand: (builder node, interned state,
    // time). States live once in the builder's pool; the frontier carries
    // copyable ids, never clones.
    let mut frontier: Vec<(NodeId, StateId, u32)> = Vec::new();
    for (state, p) in initial {
        node_count += 1;
        if node_count > config.max_nodes {
            return Err(UnfoldError::TooLarge {
                max_nodes: config.max_nodes,
            });
        }
        let sid = builder.intern(state);
        let id = builder.initial_interned(sid, p)?;
        frontier.push((id, sid, 0));
    }

    // Interning makes repeated work *visible*: two frontier nodes carrying
    // the same `(StateId, time)` expand to bit-identical successor lists
    // (the model's methods are functions of the state and time), so the
    // merged expansion is computed once per distinct pair and replayed for
    // every further node that reaches it. Unfolded trees revisit states
    // heavily — merging and environment branching both funnel into shared
    // states — which makes this the main saving of the interned pipeline.
    // Alongside each successor list the memo keeps the builder nodes of
    // the *first* emission: replays go through the builder's
    // `child_replayed` fast path (state, probability, and actions shared
    // from the template node — no per-edge re-validation, no copies).
    // Keys are dense (`time × StateId`), so the memo is a grown-on-demand
    // flat table probed with two array reads per node, not a hash map —
    // bounded by a total-cell budget so deep, state-diverse models (where
    // `time × states` is quadratic in tree size) cannot blow up memory:
    // keys past the budget spill into an ordinary hash map.
    const EXPANSION_NONE: u32 = u32::MAX;
    const DENSE_MEMO_BUDGET: usize = 1 << 20;
    let mut expansion_rows: Vec<Vec<u32>> = Vec::new();
    let mut expansion_spill: HashMap<(StateId, u32), u32, FxBuildHasher> = HashMap::default();
    let mut dense_memo_cells = 0usize;
    let mut expansions: Vec<(Successors<P>, Vec<NodeId>)> = Vec::new();
    // Per-expansion scratch: the per-agent move distributions and the merge
    // index are cleared, not reallocated, for every cache miss.
    let mut per_agent: Vec<Vec<(M::Move, P)>> = Vec::with_capacity(n_agents as usize);
    let mut index: HashMap<u64, Vec<usize>, FxBuildHasher> = HashMap::default();

    while let Some((node, sid, time)) = frontier.pop() {
        if model.is_terminal(builder.state(sid), time) {
            continue;
        }
        if let Some(cap) = config.max_depth {
            if time >= cap {
                return Err(UnfoldError::DepthExceeded { max_depth: cap });
            }
        }

        let mut memo_slot = expansion_rows
            .get(time as usize)
            .and_then(|row| row.get(sid.index()))
            .copied()
            .unwrap_or(EXPANSION_NONE);
        if memo_slot == EXPANSION_NONE && !expansion_spill.is_empty() {
            memo_slot = expansion_spill
                .get(&(sid, time))
                .copied()
                .unwrap_or(EXPANSION_NONE);
        }
        if memo_slot != EXPANSION_NONE {
            let (successors, templates) = &expansions[memo_slot as usize];
            for ((succ_id, _, _), &template) in successors.iter().zip(templates.iter()) {
                node_count += 1;
                if node_count > config.max_nodes {
                    return Err(UnfoldError::TooLarge {
                        max_nodes: config.max_nodes,
                    });
                }
                let child = builder.child_replayed(node, template);
                frontier.push((child, *succ_id, time + 1));
            }
        } else {
            // Gather each agent's mixed move distribution from its
            // local state.
            per_agent.clear();
            for a in 0..n_agents {
                let agent = AgentId(a);
                let local = builder.state(sid).local(agent);
                let dist = model.moves(agent, &local, time);
                validate_distribution(&dist).map_err(|detail| {
                    UnfoldError::BadModelDistribution {
                        origin: "moves",
                        detail,
                    }
                })?;
                per_agent.push(dist);
            }

            // Enumerate the cartesian product of joint moves, resolve
            // each via the environment, and merge identical
            // successors. Each successor is interned first (one hash +
            // `Eq` confirmation inside the pool), so the merge index
            // compares `(actions, StateId)` — a repeated successor
            // costs one hash and one id comparison, with no state
            // clone or allocation at all.
            let mut successors: Successors<P> = Vec::new();
            index.clear();
            for (joint, p_joint) in CartesianMoves::new(&per_agent) {
                let actions: Vec<(AgentId, ActionId)> = joint
                    .iter()
                    .enumerate()
                    .filter_map(|(a, mv)| model.action_of(mv).map(|act| (AgentId(a as u32), act)))
                    .collect();
                let outcomes = model.transition(builder.state(sid), &joint, time);
                validate_distribution(&outcomes).map_err(|detail| {
                    UnfoldError::BadModelDistribution {
                        origin: "transition",
                        detail,
                    }
                })?;
                for (succ, p_env) in outcomes {
                    let p = p_joint.mul(&p_env);
                    let succ_id = builder.intern(succ);
                    let mut hasher = FxHasher::default();
                    actions.hash(&mut hasher);
                    succ_id.hash(&mut hasher);
                    let bucket = index.entry(hasher.finish()).or_default();
                    match bucket
                        .iter()
                        .find(|&&i| successors[i].0 == succ_id && successors[i].1 == actions)
                    {
                        Some(&i) => {
                            successors[i].2.add_assign(&p);
                        }
                        None => {
                            bucket.push(successors.len());
                            successors.push((succ_id, actions.clone(), p));
                        }
                    }
                }
            }
            let mut templates: Vec<NodeId> = Vec::with_capacity(successors.len());
            for (succ_id, actions, p) in &successors {
                node_count += 1;
                if node_count > config.max_nodes {
                    return Err(UnfoldError::TooLarge {
                        max_nodes: config.max_nodes,
                    });
                }
                let child = builder.child_interned(node, *succ_id, p.clone(), actions)?;
                templates.push(child);
                frontier.push((child, *succ_id, time + 1));
            }
            let slot = expansions.len() as u32;
            if expansion_rows.len() <= time as usize {
                expansion_rows.resize_with(time as usize + 1, Vec::new);
            }
            let row = &mut expansion_rows[time as usize];
            if sid.index() < row.len() {
                row[sid.index()] = slot;
            } else {
                let grow = sid.index() + 1 - row.len();
                if dense_memo_cells + grow <= DENSE_MEMO_BUDGET {
                    dense_memo_cells += grow;
                    row.resize(sid.index() + 1, EXPANSION_NONE);
                    row[sid.index()] = slot;
                } else {
                    expansion_spill.insert((sid, time), slot);
                }
            }
            expansions.push((successors, templates));
        }
        // Every expanded node's children are (re)played from the memoized
        // `(state, time)` successor list, so the build pass validates the
        // outgoing distribution once per distinct pair instead of once per
        // node.
        builder.mark_children_shared(node, sid, time);
    }

    Ok(builder)
}

/// Iterator over the cartesian product of per-agent move distributions,
/// yielding each joint move with its product probability.
///
/// For distributions of sizes `k_1, …, k_n` the iterator yields exactly
/// `k_1 · k_2 · … · k_n` joint moves, and the yielded probabilities sum to
/// one whenever every input distribution does (the product distribution).
/// An empty list of distributions yields the single empty joint move with
/// probability one (the empty product); any *individual* empty
/// distribution yields nothing (there is no joint move to form).
///
/// # Examples
///
/// ```
/// use pak_protocol::unfold::CartesianMoves;
/// use pak_num::Rational;
/// use pak_core::prob::Probability;
///
/// let d = vec![
///     ("a", Rational::from_ratio(1, 2)),
///     ("b", Rational::from_ratio(1, 2)),
/// ];
/// let all: Vec<_> = CartesianMoves::new(&[d.clone(), d]).collect();
/// assert_eq!(all.len(), 4);
/// let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
/// assert!(total.is_one());
/// ```
#[derive(Debug)]
pub struct CartesianMoves<'a, T, P> {
    dists: &'a [Vec<(T, P)>],
    counters: Vec<usize>,
    done: bool,
}

impl<'a, T, P> CartesianMoves<'a, T, P> {
    /// Creates the product iterator over `dists`.
    pub fn new(dists: &'a [Vec<(T, P)>]) -> Self {
        CartesianMoves {
            dists,
            counters: vec![0; dists.len()],
            done: dists.iter().any(Vec::is_empty),
        }
    }
}

impl<T: Clone, P: Probability> Iterator for CartesianMoves<'_, T, P> {
    type Item = (Vec<T>, P);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut joint = Vec::with_capacity(self.dists.len());
        let mut prob = P::one();
        for (i, &c) in self.counters.iter().enumerate() {
            let (mv, p) = &self.dists[i][c];
            joint.push(mv.clone());
            prob = prob.mul(p);
        }
        // Advance odometer.
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] < self.dists[i].len() {
                break;
            }
            self.counters[i] = 0;
            i += 1;
        }
        Some((joint, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CoinModel, TableModel, COIN_ACT};
    use pak_core::fact::StateFact;
    use pak_core::prelude::*;
    use pak_num::Rational;

    #[test]
    fn coin_model_unfolds_to_two_runs() {
        let m = CoinModel {
            heads_num: 99,
            heads_den: 100,
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.measure(&pps.all_runs()).is_one());
        let heads = StateFact::new("heads", |g: &crate::model::CoinState| g.heads);
        let a = ActionAnalysis::new(&pps, AgentId(0), COIN_ACT, &heads).unwrap();
        assert_eq!(a.constraint_probability(), Rational::from_ratio(99, 100));
        // The blind agent's expected belief equals the prior (Theorem 6.2).
        assert_eq!(a.expected_belief(), Rational::from_ratio(99, 100));
    }

    #[test]
    fn cartesian_moves_enumerates_products() {
        let d1 = vec![
            ("a", Rational::from_ratio(1, 2)),
            ("b", Rational::from_ratio(1, 2)),
        ];
        let d2 = vec![
            ("x", Rational::from_ratio(1, 3)),
            ("y", Rational::from_ratio(1, 3)),
            ("z", Rational::from_ratio(1, 3)),
        ];
        let all: Vec<(Vec<&str>, Rational)> = CartesianMoves::new(&[d1, d2]).collect();
        assert_eq!(all.len(), 6);
        let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one());
    }

    #[test]
    fn cartesian_of_empty_list_is_unit() {
        let dists: Vec<Vec<((), Rational)>> = vec![];
        let all: Vec<(Vec<()>, Rational)> = CartesianMoves::new(&dists).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].1.is_one());
    }

    #[test]
    fn mixed_action_model_unfolds_figure1() {
        // Figure 1 via a table model: one agent, mixed α/α′ at time 0.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![(
                (0, 0, 0),
                vec![
                    (Some(ActionId(0)), Rational::from_ratio(1, 2)),
                    (Some(ActionId(1)), Rational::from_ratio(1, 2)),
                ],
            )],
            transitions: vec![],
            ..TableModel::default()
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        assert!(pps.is_proper(AgentId(0), ActionId(0)));
        // The paper's Figure-1 pathology, via the protocol pipeline:
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &psi).unwrap();
        assert!(a.constraint_probability().is_zero());
        assert_eq!(a.min_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
    }

    #[test]
    fn merging_identical_successors() {
        // Environment flips two fair coins but the successor state only
        // records their XOR: 4 outcomes merge into 2 children.
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            moves: vec![],
            transitions: vec![(
                (0, 0),
                vec![
                    (0, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (1, vec![0], Rational::from_ratio(1, 4)),
                    (0, vec![0], Rational::from_ratio(1, 4)),
                ],
            )],
            ..TableModel::default()
        };
        let pps = unfold::<_, Rational>(&m).unwrap();
        assert_eq!(pps.num_runs(), 2);
        for run in pps.run_ids() {
            assert_eq!(pps.run_probability(run), &Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn node_limit_enforced() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let cfg = UnfoldConfig {
            max_nodes: 2,
            max_depth: None,
        };
        let err = unfold_with::<_, Rational>(&m, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 2 }));
    }

    #[test]
    fn max_nodes_counts_state_nodes_exactly() {
        // The coin tree has exactly 4 state nodes (2 initial states, each
        // with one terminal child); the phantom root is not counted, so
        // max_nodes = 4 succeeds and max_nodes = 3 fails.
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let pps = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 4,
                max_depth: None,
            },
        )
        .unwrap();
        assert_eq!(pps.num_nodes(), 5); // 4 state nodes + the root λ
        let err = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 3,
                max_depth: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 3 }));
    }

    #[test]
    fn max_nodes_caps_initial_states_too() {
        // Two initial states with max_nodes = 1 must already fail at the
        // prior, not only when expanding children.
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let err = unfold_with::<_, Rational>(
            &m,
            &UnfoldConfig {
                max_nodes: 1,
                max_depth: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, UnfoldError::TooLarge { max_nodes: 1 }));
    }

    #[test]
    fn depth_cap_detects_nontermination() {
        // A model whose is_terminal never fires.
        #[derive(Debug)]
        struct Forever;
        impl ProtocolModel<Rational> for Forever {
            type Global = SimpleState;
            type Move = ();
            fn n_agents(&self) -> u32 {
                1
            }
            fn initial_states(&self) -> Vec<(SimpleState, Rational)> {
                vec![(SimpleState::zeroed(1), Rational::one())]
            }
            fn is_terminal(&self, _s: &SimpleState, _t: u32) -> bool {
                false
            }
            fn moves(&self, _a: AgentId, _l: &u64, _t: u32) -> Vec<((), Rational)> {
                vec![((), Rational::one())]
            }
            fn action_of(&self, _mv: &()) -> Option<ActionId> {
                None
            }
            fn transition(
                &self,
                s: &SimpleState,
                _m: &[()],
                _t: u32,
            ) -> Vec<(SimpleState, Rational)> {
                vec![(s.clone(), Rational::one())]
            }
        }
        let cfg = UnfoldConfig {
            max_nodes: 1 << 20,
            max_depth: Some(8),
        };
        let err = unfold_with::<_, Rational>(&Forever, &cfg).unwrap_err();
        assert!(matches!(err, UnfoldError::DepthExceeded { max_depth: 8 }));
    }

    #[test]
    fn bad_model_distribution_reported() {
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::from_ratio(1, 2))], // sums to ½
            horizon: 1,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        let err = unfold::<_, Rational>(&m).unwrap_err();
        assert!(matches!(
            err,
            UnfoldError::BadModelDistribution {
                origin: "initial_states",
                ..
            }
        ));
        assert!(err.to_string().contains("initial_states"));
    }
}
