//! The protocol-system model (§2.2 of the paper).
//!
//! A joint protocol is a tuple `P = (P_e, P_1, …, P_n)` where each `P_i`
//! maps agent `i`'s *local state* to a distribution over its actions (a
//! *mixed action step* when the support has more than one element), and the
//! environment resolves the joint choice into a successor global state —
//! possibly probabilistically (message loss, scheduling, coin flips).
//!
//! [`ProtocolModel`] captures exactly this structure. Two properties of the
//! paper's setting are enforced by the shape of the trait:
//!
//! * **Locality** — [`ProtocolModel::moves`] receives only the agent's own
//!   local data (plus the time, which a synchronous agent always knows), so
//!   a protocol physically cannot read other agents' states.
//! * **Bounded termination** — [`ProtocolModel::is_terminal`] must
//!   eventually return `true` on every path so the unfolded system is a
//!   finite pps.
//!
//! # The scratch-buffer (`_into`) API
//!
//! [`ProtocolModel::moves`] and [`ProtocolModel::transition`] return owned
//! `Vec`s — convenient to implement, but the unfolder and simulator call
//! them in a tight loop, and a fresh allocation per query was the last
//! per-expansion allocation of the pipeline. The hot paths therefore drive
//! the appending siblings [`ProtocolModel::moves_into`] and
//! [`ProtocolModel::transition_into`], which write into a caller-owned
//! scratch buffer that is cleared and reused across queries. Both have
//! default implementations delegating to the `Vec`-returning methods, so a
//! model only implementing the owned API keeps working unchanged; models
//! on hot paths (every model in this workspace) implement the `_into`
//! variants natively and allocate nothing per query.
//!
//! The contract on a native `_into` implementation is strict — the
//! differential harness (`tests/unfold_differential.rs` and
//! `tests/systems_unfold_smoke.rs`) holds every model to it:
//!
//! * it must **append** to `out` exactly the entries the `Vec`-returning
//!   method would return, in the same order, with bit-equal probabilities
//!   (callers clear the buffer; implementations never read or truncate it);
//! * it must be **pure**: a function of its arguments only, so that the
//!   unfolder's `(state, time)` expansion memo and the parallel subtree
//!   unfolding of [`mod@crate::unfold`] may call it once and replay the
//!   result anywhere. Purity outlives a single unfold: a retained
//!   [`Unfolder`](crate::unfold::Unfolder) keeps the memo alive across
//!   [`extend_horizon`](crate::unfold::Unfolder::extend_horizon) calls,
//!   so an expansion computed while building horizon `h` may be replayed
//!   verbatim while growing to `h + 1` and beyond — a model whose answers
//!   drifted between calls would silently diverge from its own earlier
//!   tree.
//!
//! # The `Hash + Eq` merge contract
//!
//! Unfolding merges successor states that compare equal under the same
//! joint actions (see [`mod@crate::unfold`]). Both the global-state type
//! ([`ProtocolModel::Global`], via
//! [`GlobalState`]'s supertraits) and
//! [`ProtocolModel::Move`] are therefore required to implement `Eq + Hash`,
//! and equal values must hash equal. The merge is a pure tree-size
//! optimisation: a state type whose `Eq` distinguishes more (or fewer)
//! values changes how many nodes the unfolded tree has, but never any run
//! probability, local state, or action event.

use core::fmt::Debug;
use core::hash::{Hash, Hasher};
use std::collections::HashMap;
use std::sync::OnceLock;

use pak_core::hash::{Fingerprint, FxBuildHasher, FxHasher};
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

/// A joint probabilistic protocol together with its environment, ready to be
/// unfolded into a pps or sampled by the simulator.
///
/// # Examples
///
/// See [`crate::messaging::LossyMessagingModel`] for a full implementation,
/// or [`CoinModel`] in this module for a minimal one.
pub trait ProtocolModel<P: Probability> {
    /// The global-state representation of the unfolded system.
    type Global: GlobalState;

    /// An agent's move: the action it performs plus any effects the
    /// environment must see (e.g. messages to send). `Eq + Hash` feed the
    /// unfolder's merge contract (see the module docs).
    type Move: Clone + Debug + Eq + Hash;

    /// The number of agents.
    fn n_agents(&self) -> u32;

    /// The prior distribution over initial global states (non-empty,
    /// probabilities summing to one).
    fn initial_states(&self) -> Vec<(Self::Global, P)>;

    /// Whether the protocol has terminated at `state` (no further rounds).
    /// Must eventually hold on every path.
    fn is_terminal(&self, state: &Self::Global, time: Time) -> bool;

    /// Agent `agent`'s mixed move distribution at its local state `local`
    /// and time `time` — the paper's `P_i(ℓ_i) ∈ Δ(Act_i)`.
    ///
    /// The returned distribution must be non-empty with probabilities
    /// summing to one. A singleton distribution is a deterministic step.
    fn moves(
        &self,
        agent: AgentId,
        local: &<Self::Global as GlobalState>::Local,
        time: Time,
    ) -> Vec<(Self::Move, P)>;

    /// The action recorded on the run history for a move (`None` when the
    /// move is a skip that should not appear as a `does_i` event).
    fn action_of(&self, mv: &Self::Move) -> Option<ActionId>;

    /// The environment's resolution of the joint moves at `state`: a
    /// distribution over successor global states (non-empty, summing to
    /// one). `moves[i]` is agent `i`'s chosen move.
    fn transition(
        &self,
        state: &Self::Global,
        moves: &[Self::Move],
        time: Time,
    ) -> Vec<(Self::Global, P)>;

    /// Appends agent `agent`'s mixed move distribution at `(local, time)`
    /// to `out` — the allocation-free sibling of [`ProtocolModel::moves`]
    /// driven by the unfolder and simulator through reusable scratch
    /// buffers.
    ///
    /// The default delegates to [`ProtocolModel::moves`]; native
    /// implementations must append exactly the entries `moves` would
    /// return, in the same order, with bit-equal probabilities, and must
    /// not read or modify `out`'s existing contents (see the module docs
    /// for the full contract).
    fn moves_into(
        &self,
        agent: AgentId,
        local: &<Self::Global as GlobalState>::Local,
        time: Time,
        out: &mut Vec<(Self::Move, P)>,
    ) {
        out.extend(self.moves(agent, local, time));
    }

    /// Appends the environment's resolution of `moves` at `(state, time)`
    /// to `out` — the allocation-free sibling of
    /// [`ProtocolModel::transition`].
    ///
    /// Same contract as [`ProtocolModel::moves_into`]: append exactly what
    /// `transition` would return, in order, bit-equal, leaving `out`'s
    /// existing contents untouched.
    fn transition_into(
        &self,
        state: &Self::Global,
        moves: &[Self::Move],
        time: Time,
        out: &mut Vec<(Self::Global, P)>,
    ) {
        out.extend(self.transition(state, moves, time));
    }
}

/// A minimal single-agent model used in documentation and tests: the
/// environment flips a biased coin at time 0 (hidden from the agent), and
/// the agent unconditionally performs one action at time 0.
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, ProtocolModel};
/// use pak_core::ids::AgentId;
/// use pak_core::state::GlobalState;
///
/// let m = CoinModel { heads_num: 99, heads_den: 100 };
/// let init = ProtocolModel::<f64>::initial_states(&m);
/// assert_eq!(init.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CoinModel {
    /// Numerator of the heads probability.
    pub heads_num: u64,
    /// Denominator of the heads probability.
    pub heads_den: u64,
}

/// Global state of [`CoinModel`]: the hidden coin plus a blind agent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoinState {
    /// `true` iff the hidden coin landed heads.
    pub heads: bool,
}

impl GlobalState for CoinState {
    type Local = u8;

    fn local(&self, _agent: AgentId) -> u8 {
        0 // the agent observes nothing
    }
}

/// The action id used by [`CoinModel`].
pub const COIN_ACT: ActionId = ActionId(0);

impl<P: Probability> ProtocolModel<P> for CoinModel {
    type Global = CoinState;
    type Move = ();

    fn n_agents(&self) -> u32 {
        1
    }

    fn initial_states(&self) -> Vec<(CoinState, P)> {
        let heads = P::from_ratio(self.heads_num, self.heads_den);
        vec![
            (CoinState { heads: true }, heads.clone()),
            (CoinState { heads: false }, heads.one_minus()),
        ]
    }

    fn is_terminal(&self, _state: &CoinState, time: Time) -> bool {
        time >= 1
    }

    fn moves(&self, _agent: AgentId, _local: &u8, _time: Time) -> Vec<((), P)> {
        vec![((), P::one())]
    }

    fn action_of(&self, _mv: &()) -> Option<ActionId> {
        Some(COIN_ACT)
    }

    fn transition(&self, state: &CoinState, _moves: &[()], _time: Time) -> Vec<(CoinState, P)> {
        vec![(state.clone(), P::one())]
    }

    fn moves_into(&self, _agent: AgentId, _local: &u8, _time: Time, out: &mut Vec<((), P)>) {
        out.push(((), P::one()));
    }

    fn transition_into(
        &self,
        state: &CoinState,
        _moves: &[()],
        _time: Time,
        out: &mut Vec<(CoinState, P)>,
    ) {
        out.push((state.clone(), P::one()));
    }
}

/// Per-agent constraint on one slot of a joint move, used by the guards of
/// [`StateTransition`] rules.
///
/// A guard is a vector of patterns, one per agent; the rule fires only when
/// every pattern matches the corresponding agent's move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MovePattern {
    /// Matches any move (wildcard).
    Any,
    /// Matches only a skip (`None` — no recorded action).
    Skip,
    /// Matches only the given action being performed.
    Do(ActionId),
}

impl MovePattern {
    /// Whether this pattern matches a concrete move.
    #[must_use]
    pub fn matches(&self, mv: &Option<ActionId>) -> bool {
        match self {
            MovePattern::Any => true,
            MovePattern::Skip => mv.is_none(),
            MovePattern::Do(a) => *mv == Some(*a),
        }
    }
}

/// A guarded, state-keyed transition rule of a [`TableModel`].
///
/// Unlike the coarse `(env, time)`-keyed [`TableModel::transitions`] table,
/// a state rule matches on the *entire* source state — environment part
/// **and** every agent's local data — and may additionally be guarded on
/// the joint move the agents just performed. This is what lets a table
/// express environments whose successor depends on agents' local states or
/// on which actions were taken (message loss towards an informed agent,
/// observable coin flips, …) — protocols that previously required a
/// hand-written [`ProtocolModel`] implementation.
///
/// Resolution order (see [`TableModel`]): among rules whose
/// `(env, locals, time)` equal the source state's, the first one **in
/// declaration order** whose guard matches the joint move fires; if none
/// fires, the `(env, time)` table is consulted; if that is also absent, the
/// state is copied unchanged.
#[derive(Debug, Clone)]
pub struct StateTransition<P> {
    /// Environment part of the source state.
    pub env: u64,
    /// Per-agent local data of the source state (length = `n_agents`).
    pub locals: Vec<u64>,
    /// The time at which this rule applies.
    pub time: Time,
    /// Guard over the joint move: empty means unconditional; otherwise one
    /// pattern per agent, all of which must match.
    pub guard: Vec<MovePattern>,
    /// Successor distribution: `(new_env, new_locals, probability)`.
    #[allow(clippy::type_complexity)]
    pub outcomes: Vec<(u64, Vec<u64>, P)>,
}

/// A table-driven protocol model over [`pak_core::state::SimpleState`],
/// convenient for spelling out small systems (counterexamples, exercises)
/// without writing a trait implementation — and the compile target of the
/// `pak-dsl` protocol language.
///
/// The tables map `(agent local data, time)` to move distributions and
/// source states to successor distributions; entries default to "skip" /
/// "stay" when absent. Transitions resolve in two tiers: the fine-grained
/// [`TableModel::state_transitions`] rules (keyed on the whole state, with
/// optional guards on the joint move — see [`StateTransition`]) are
/// consulted first, then the coarse `(env, time)`-keyed
/// [`TableModel::transitions`] table. Lookups go through a prebuilt
/// [`TableIndex`] (hash maps plus a sorted position array, built lazily on
/// first use) rather than scanning the tables linearly; see
/// [`TableModel::index`] for the contract this places on table mutation.
///
/// # Examples
///
/// A one-agent model that performs action `0` with probability ¾ at time
/// 0, unfolded into a two-run pps:
///
/// ```
/// use pak_protocol::model::TableModel;
/// use pak_protocol::unfold::unfold;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let model: TableModel<Rational> = TableModel {
///     n_agents: 1,
///     initial: vec![(0, vec![0], Rational::one())],
///     horizon: 1,
///     moves: vec![(
///         (0, 0, 0),
///         vec![
///             (Some(ActionId(0)), Rational::from_ratio(3, 4)),
///             (None, Rational::from_ratio(1, 4)),
///         ],
///     )],
///     transitions: vec![],
///     ..TableModel::default()
/// };
/// let pps = unfold::<_, Rational>(&model).unwrap();
/// assert_eq!(pps.num_runs(), 2);
/// let acts = pps.action_event(AgentId(0), ActionId(0));
/// assert_eq!(pps.measure(&acts), Rational::from_ratio(3, 4));
/// ```
#[derive(Debug, Clone)]
pub struct TableModel<P> {
    /// Number of agents.
    pub n_agents: u32,
    /// Prior over initial states: `(env, locals, probability)`.
    pub initial: Vec<(u64, Vec<u64>, P)>,
    /// Horizon: terminal once `time >= horizon`.
    pub horizon: Time,
    /// Move table: `(agent, local, time) → [(action, prob)]`. `None` action
    /// means skip.
    #[allow(clippy::type_complexity)]
    pub moves: Vec<((u32, u64, Time), Vec<(Option<ActionId>, P)>)>,
    /// Transition table: `(env, time) → [(new_env, new_locals, prob)]`;
    /// when absent the state is copied unchanged.
    #[allow(clippy::type_complexity)]
    pub transitions: Vec<((u64, Time), Vec<(u64, Vec<u64>, P)>)>,
    /// Guarded, state-keyed transition rules, consulted *before*
    /// `transitions`: the first rule (in declaration order) matching the
    /// full source state, time, and joint move fires. See
    /// [`StateTransition`].
    pub state_transitions: Vec<StateTransition<P>>,
    /// An opaque variant label mixed into the model's
    /// [`ModelFingerprint`]. Two models with identical tables but
    /// different tags fingerprint differently — this is how DSL
    /// adversary variants (which may coincide table-for-table with
    /// their base protocol) are kept distinct in [`PpsCache`] keys.
    /// `None` (the default) adds nothing to the digest, so existing
    /// hand-written models keep their fingerprints.
    ///
    /// [`PpsCache`]: https://docs.rs/pak-engine
    pub variant_tag: Option<String>,
    /// Lazily built lookup index over `moves` and `transitions` (see
    /// [`TableModel::index`]). Initialise with `OnceLock::new()` — or
    /// simply spread `..TableModel::default()` into a struct literal.
    pub index: OnceLock<TableIndex>,
}

// Implemented by hand (not derived) so that `..TableModel::default()`
// works in struct literals for *any* probability type, without a
// `P: Default` bound.
impl<P> Default for TableModel<P> {
    fn default() -> Self {
        TableModel {
            n_agents: 0,
            initial: Vec::new(),
            horizon: 0,
            moves: Vec::new(),
            transitions: Vec::new(),
            state_transitions: Vec::new(),
            variant_tag: None,
            index: OnceLock::new(),
        }
    }
}

/// A prebuilt lookup index over a [`TableModel`]'s tables: hash maps from
/// `(agent, local, time)` and `(env, time)` to positions in the `moves` /
/// `transitions` vectors. Replaces the per-call linear table scans the
/// unfolder used to pay on every node expansion.
///
/// When a key occurs more than once in a table, the index records the
/// *first* occurrence — exactly the entry a front-to-back linear scan
/// would have found — so indexed and scanned lookups agree on every input
/// (property-tested in `tests/table_index.rs`).
#[derive(Debug, Clone, Default)]
pub struct TableIndex {
    moves: HashMap<(u32, u64, Time), usize, FxBuildHasher>,
    transitions: HashMap<(u64, Time), usize, FxBuildHasher>,
    /// Positions into `state_transitions`, stably sorted by
    /// `(env, locals, time)` so all rules for one source state are a
    /// contiguous range (found by binary search) while preserving
    /// declaration order within the range — the order guard matching
    /// depends on.
    state_order: Vec<u32>,
}

impl TableIndex {
    /// Builds the index for the given tables, keeping the first occurrence
    /// of each duplicated key.
    #[must_use]
    pub fn build<P>(model: &TableModel<P>) -> Self {
        let mut moves: HashMap<(u32, u64, Time), usize, FxBuildHasher> = HashMap::default();
        for (i, (key, _)) in model.moves.iter().enumerate() {
            moves.entry(*key).or_insert(i);
        }
        let mut transitions: HashMap<(u64, Time), usize, FxBuildHasher> = HashMap::default();
        for (i, (key, _)) in model.transitions.iter().enumerate() {
            transitions.entry(*key).or_insert(i);
        }
        #[allow(clippy::cast_possible_truncation)]
        let mut state_order: Vec<u32> = (0..model.state_transitions.len() as u32).collect();
        // A *stable* sort: rules with equal keys keep declaration order,
        // which first-match guard resolution relies on.
        state_order.sort_by(|&a, &b| {
            let ra = &model.state_transitions[a as usize];
            let rb = &model.state_transitions[b as usize];
            (ra.env, &ra.locals, ra.time).cmp(&(rb.env, &rb.locals, rb.time))
        });
        TableIndex {
            moves,
            transitions,
            state_order,
        }
    }

    /// The positions (into `state_transitions`, in declaration order) of
    /// all rules keyed on exactly `(env, locals, time)` — an empty slice
    /// when no rule matches that source state. Zero-allocation: two binary
    /// searches over the prebuilt sorted position array.
    #[must_use]
    pub fn state_rules<'a, P>(
        &'a self,
        model: &TableModel<P>,
        env: u64,
        locals: &[u64],
        time: Time,
    ) -> &'a [u32] {
        let key = (env, locals, time);
        let cmp = |pos: &u32| {
            let r = &model.state_transitions[*pos as usize];
            (r.env, r.locals.as_slice(), r.time).cmp(&key)
        };
        let lo = self.state_order.partition_point(|p| cmp(p).is_lt());
        let hi = self.state_order.partition_point(|p| cmp(p).is_le());
        &self.state_order[lo..hi]
    }

    /// The position in `moves` holding the distribution for
    /// `(agent, local, time)`, or `None` when the entry is absent (the
    /// model then defaults to a deterministic skip).
    #[must_use]
    pub fn move_entry(&self, agent: u32, local: u64, time: Time) -> Option<usize> {
        self.moves.get(&(agent, local, time)).copied()
    }

    /// The position in `transitions` holding the distribution for
    /// `(env, time)`, or `None` when the entry is absent (the model then
    /// copies the state unchanged).
    #[must_use]
    pub fn transition_entry(&self, env: u64, time: Time) -> Option<usize> {
        self.transitions.get(&(env, time)).copied()
    }
}

impl<P> TableModel<P> {
    /// The lookup index over `moves` and `transitions`, built on first use
    /// and cached (so one unfold builds it exactly once, and every
    /// subsequent lookup is a hash probe).
    ///
    /// **Contract:** the tables must not be mutated after the index has
    /// been built — lookups would silently consult stale positions. After
    /// mutating a model in place, call [`TableModel::invalidate_index`].
    pub fn index(&self) -> &TableIndex {
        self.index.get_or_init(|| TableIndex::build(self))
    }

    /// Drops the cached [`TableIndex`] so the next lookup rebuilds it.
    /// Call this after mutating `moves`, `transitions`, or
    /// `state_transitions` in place.
    pub fn invalidate_index(&mut self) {
        self.index = OnceLock::new();
    }
}

impl<P: Probability> TableModel<P> {
    /// The first state-keyed rule (declaration order) matching `state`,
    /// `time`, and the joint move `moves`, if any — the top tier of the
    /// transition resolution order documented on [`TableModel`].
    fn state_rule(
        &self,
        state: &pak_core::state::SimpleState,
        moves: &[Option<ActionId>],
        time: Time,
    ) -> Option<&StateTransition<P>> {
        if self.state_transitions.is_empty() {
            return None;
        }
        self.index()
            .state_rules(self, state.env, &state.locals, time)
            .iter()
            .map(|&pos| &self.state_transitions[pos as usize])
            .find(|rule| {
                rule.guard.is_empty()
                    || (rule.guard.len() == moves.len()
                        && rule.guard.iter().zip(moves).all(|(g, mv)| g.matches(mv)))
            })
    }
}

impl<P: Probability> ProtocolModel<P> for TableModel<P> {
    type Global = pak_core::state::SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        self.n_agents
    }

    fn initial_states(&self) -> Vec<(Self::Global, P)> {
        self.initial
            .iter()
            .map(|(env, locals, p)| {
                (
                    pak_core::state::SimpleState::new(*env, locals.clone()),
                    p.clone(),
                )
            })
            .collect()
    }

    fn is_terminal(&self, _state: &Self::Global, time: Time) -> bool {
        time >= self.horizon
    }

    fn moves(&self, agent: AgentId, local: &u64, time: Time) -> Vec<(Self::Move, P)> {
        self.index()
            .move_entry(agent.0, *local, time)
            .map_or_else(|| vec![(None, P::one())], |i| self.moves[i].1.clone())
    }

    fn moves_into(&self, agent: AgentId, local: &u64, time: Time, out: &mut Vec<(Self::Move, P)>) {
        // The indexed position is read in place: entries are cloned into
        // the caller's buffer one by one, but the row `Vec` itself is
        // never cloned and nothing is allocated on the absent-key path.
        match self.index().move_entry(agent.0, *local, time) {
            Some(i) => out.extend_from_slice(&self.moves[i].1),
            None => out.push((None, P::one())),
        }
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &Self::Global,
        moves: &[Self::Move],
        time: Time,
    ) -> Vec<(Self::Global, P)> {
        let mut out = Vec::new();
        self.transition_into(state, moves, time, &mut out);
        out
    }

    fn transition_into(
        &self,
        state: &Self::Global,
        moves: &[Self::Move],
        time: Time,
        out: &mut Vec<(Self::Global, P)>,
    ) {
        // Resolution order: state-keyed guarded rules, then the coarse
        // (env, time) table, then copy-unchanged.
        if let Some(rule) = self.state_rule(state, moves, time) {
            out.extend(rule.outcomes.iter().map(|(env, locals, p)| {
                (
                    pak_core::state::SimpleState::new(*env, locals.clone()),
                    p.clone(),
                )
            }));
            return;
        }
        match self.index().transition_entry(state.env, time) {
            Some(i) => out.extend(self.transitions[i].1.iter().map(|(env, locals, p)| {
                (
                    pak_core::state::SimpleState::new(*env, locals.clone()),
                    p.clone(),
                )
            })),
            None => out.push((state.clone(), P::one())),
        }
    }
}

/// Models that can identify themselves structurally, for tree caching.
///
/// `pak-engine` keys its cache of unfolded [`Pps`](pak_core::pps::Pps)
/// trees on `(model fingerprint, horizon)`: two models with equal
/// fingerprints are served the same cached tree. An implementation must
/// therefore digest **everything** its `ProtocolModel` answers depend on
/// — priors, move tables, transition tables, horizon — so that equal
/// fingerprints really do imply identical unfoldings. Probabilities are
/// digested through their `Display` form, which is exact for `Rational`
/// and round-trips `f64` (Rust's shortest-representation formatting).
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, ModelFingerprint};
///
/// let a = CoinModel { heads_num: 3, heads_den: 4 };
/// let b = CoinModel { heads_num: 3, heads_den: 4 };
/// assert_eq!(a.fingerprint(), b.fingerprint());
/// assert_ne!(
///     a.fingerprint(),
///     CoinModel { heads_num: 1, heads_den: 4 }.fingerprint(),
/// );
/// ```
pub trait ModelFingerprint {
    /// A structural digest of the model: equal fingerprints must imply
    /// identical unfolded trees at every horizon.
    fn fingerprint(&self) -> Fingerprint;
}

impl ModelFingerprint for CoinModel {
    fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of(&("coin", self.heads_num, self.heads_den))
    }
}

impl<P: Probability> ModelFingerprint for TableModel<P> {
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FxHasher::default();
        "table".hash(&mut h);
        self.variant_tag.hash(&mut h);
        self.n_agents.hash(&mut h);
        self.horizon.hash(&mut h);
        self.initial.len().hash(&mut h);
        for (env, locals, p) in &self.initial {
            (env, locals).hash(&mut h);
            p.to_string().hash(&mut h);
        }
        self.moves.len().hash(&mut h);
        for (key, row) in &self.moves {
            key.hash(&mut h);
            row.len().hash(&mut h);
            for (action, p) in row {
                action.hash(&mut h);
                p.to_string().hash(&mut h);
            }
        }
        self.transitions.len().hash(&mut h);
        for (key, row) in &self.transitions {
            key.hash(&mut h);
            row.len().hash(&mut h);
            for (env, locals, p) in row {
                (env, locals).hash(&mut h);
                p.to_string().hash(&mut h);
            }
        }
        self.state_transitions.len().hash(&mut h);
        for rule in &self.state_transitions {
            (rule.env, &rule.locals, rule.time).hash(&mut h);
            rule.guard.hash(&mut h);
            rule.outcomes.len().hash(&mut h);
            for (env, locals, p) in &rule.outcomes {
                (env, locals).hash(&mut h);
                p.to_string().hash(&mut h);
            }
        }
        Fingerprint(h.finish())
    }
}

impl<M: ModelFingerprint> ModelFingerprint for VecApiModel<M> {
    fn fingerprint(&self) -> Fingerprint {
        self.0.fingerprint()
    }
}

/// Adapter pinning a model to its `Vec`-returning API: every
/// scratch-buffer query on the wrapper goes through the *default*
/// [`ProtocolModel::moves_into`] / [`ProtocolModel::transition_into`]
/// implementations, never the wrapped model's native ones.
///
/// This exists for the differential test layer
/// (`tests/unfold_differential.rs`, `tests/systems_unfold_smoke.rs`):
/// unfolding `m` and `VecApiModel(m)` must produce identical systems —
/// bit-equal run probabilities, identical cells — which is what proves a
/// native `_into` implementation honours the contract in the module docs.
///
/// # Examples
///
/// ```
/// use pak_protocol::model::{CoinModel, ProtocolModel, VecApiModel};
/// use pak_protocol::unfold::unfold;
/// use pak_num::Rational;
///
/// let m = CoinModel { heads_num: 1, heads_den: 2 };
/// let native = unfold::<_, Rational>(&m).unwrap();
/// let defaulted = unfold::<_, Rational>(&VecApiModel(m)).unwrap();
/// assert_eq!(native.num_runs(), defaulted.num_runs());
/// ```
#[derive(Debug, Clone)]
pub struct VecApiModel<M>(pub M);

impl<M, P> ProtocolModel<P> for VecApiModel<M>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    type Global = M::Global;
    type Move = M::Move;

    fn n_agents(&self) -> u32 {
        self.0.n_agents()
    }

    fn initial_states(&self) -> Vec<(Self::Global, P)> {
        self.0.initial_states()
    }

    fn is_terminal(&self, state: &Self::Global, time: Time) -> bool {
        self.0.is_terminal(state, time)
    }

    fn moves(
        &self,
        agent: AgentId,
        local: &<Self::Global as GlobalState>::Local,
        time: Time,
    ) -> Vec<(Self::Move, P)> {
        self.0.moves(agent, local, time)
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        self.0.action_of(mv)
    }

    fn transition(
        &self,
        state: &Self::Global,
        moves: &[Self::Move],
        time: Time,
    ) -> Vec<(Self::Global, P)> {
        self.0.transition(state, moves, time)
    }

    // `moves_into`/`transition_into` deliberately NOT forwarded: the
    // defaults route through the `Vec` methods above, which is the point.
}

/// Validates that a move or transition distribution is well formed (used by
/// the unfolder and simulator before consuming model output).
///
/// # Errors
///
/// Returns a description of the violation, if any.
pub fn validate_distribution<T, P: Probability>(dist: &[(T, P)]) -> Result<(), String> {
    if dist.is_empty() {
        return Err("distribution is empty".to_string());
    }
    // A deterministic (single-entry) distribution — the common case for
    // protocol moves — is valid iff its probability is exactly one; skip
    // the accumulator loop.
    if let [(_, p)] = dist {
        if !p.is_one() {
            return Err(format!("distribution sums to {p}, expected 1"));
        }
        return Ok(());
    }
    let mut sum = P::zero();
    for (_, p) in dist {
        if !p.at_least(&P::zero()) || p.is_zero() {
            return Err(format!(
                "distribution entry has non-positive probability {p}"
            ));
        }
        sum.add_assign(p);
    }
    if !sum.is_one() {
        return Err(format!("distribution sums to {sum}, expected 1"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;

    #[test]
    fn coin_model_shape() {
        let m = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let init: Vec<(CoinState, Rational)> = m.initial_states();
        assert_eq!(init.len(), 2);
        let total: Rational = init.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one());
        assert!(ProtocolModel::<Rational>::is_terminal(&m, &init[0].0, 1));
        assert!(!ProtocolModel::<Rational>::is_terminal(&m, &init[0].0, 0));
        let mv: Vec<((), Rational)> = m.moves(AgentId(0), &0, 0);
        assert_eq!(mv.len(), 1);
        assert_eq!(
            ProtocolModel::<Rational>::action_of(&m, &()),
            Some(COIN_ACT)
        );
    }

    #[test]
    fn validate_distribution_accepts_good() {
        let d = vec![
            ("a", Rational::from_ratio(1, 3)),
            ("b", Rational::from_ratio(2, 3)),
        ];
        assert!(validate_distribution(&d).is_ok());
    }

    #[test]
    fn validate_distribution_rejects_bad() {
        let empty: Vec<((), Rational)> = vec![];
        assert!(validate_distribution(&empty).is_err());
        let short = vec![((), Rational::from_ratio(1, 3))];
        assert!(validate_distribution(&short)
            .unwrap_err()
            .contains("sums to"));
        let zero = vec![((), Rational::zero()), ((), Rational::one())];
        assert!(validate_distribution(&zero)
            .unwrap_err()
            .contains("non-positive"));
    }

    #[test]
    fn table_model_defaults() {
        let m: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 2,
            moves: vec![],
            transitions: vec![],
            ..TableModel::default()
        };
        // Default move is skip; default transition copies the state.
        let mv = ProtocolModel::<Rational>::moves(&m, AgentId(0), &0, 0);
        assert_eq!(mv.len(), 1);
        assert_eq!(m.action_of(&mv[0].0), None);
        let st = pak_core::state::SimpleState::new(0, vec![0]);
        let tr = m.transition(&st, &[None], 0);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].0, st);
    }

    #[test]
    fn move_pattern_matching() {
        assert!(MovePattern::Any.matches(&None));
        assert!(MovePattern::Any.matches(&Some(ActionId(3))));
        assert!(MovePattern::Skip.matches(&None));
        assert!(!MovePattern::Skip.matches(&Some(ActionId(3))));
        assert!(MovePattern::Do(ActionId(3)).matches(&Some(ActionId(3))));
        assert!(!MovePattern::Do(ActionId(3)).matches(&Some(ActionId(4))));
        assert!(!MovePattern::Do(ActionId(3)).matches(&None));
    }

    /// Guarded state rules: declaration order decides among same-key rules,
    /// guards select on the joint move, and unmatched states fall through
    /// to the coarse `(env, time)` table, then to copy-unchanged.
    #[test]
    fn state_transitions_resolve_in_declaration_order() {
        let st = |env, locals: &[u64]| pak_core::state::SimpleState::new(env, locals.to_vec());
        let m: TableModel<Rational> = TableModel {
            n_agents: 2,
            initial: vec![(0, vec![0, 0], Rational::one())],
            horizon: 2,
            transitions: vec![((7, 0), vec![(8, vec![0, 0], Rational::one())])],
            state_transitions: vec![
                StateTransition {
                    env: 0,
                    locals: vec![0, 0],
                    time: 0,
                    guard: vec![MovePattern::Do(ActionId(1)), MovePattern::Any],
                    outcomes: vec![(1, vec![1, 0], Rational::one())],
                },
                StateTransition {
                    env: 0,
                    locals: vec![0, 0],
                    time: 0,
                    guard: vec![],
                    outcomes: vec![(2, vec![0, 0], Rational::one())],
                },
            ],
            ..TableModel::default()
        };
        // Guard matches → first rule fires.
        let tr = m.transition(&st(0, &[0, 0]), &[Some(ActionId(1)), None], 0);
        assert_eq!(tr, vec![(st(1, &[1, 0]), Rational::one())]);
        // Guard fails → unconditional fallback rule fires.
        let tr = m.transition(&st(0, &[0, 0]), &[None, None], 0);
        assert_eq!(tr, vec![(st(2, &[0, 0]), Rational::one())]);
        // Different locals → no state rule; env 7 hits the (env, time) table.
        let tr = m.transition(&st(7, &[0, 1]), &[None, None], 0);
        assert_eq!(tr, vec![(st(8, &[0, 0]), Rational::one())]);
        // No rule anywhere → copy unchanged.
        let tr = m.transition(&st(3, &[0, 1]), &[None, None], 1);
        assert_eq!(tr, vec![(st(3, &[0, 1]), Rational::one())]);
        // The `_into` path agrees entry-for-entry.
        let mut out = Vec::new();
        m.transition_into(&st(0, &[0, 0]), &[Some(ActionId(1)), None], 0, &mut out);
        assert_eq!(out, vec![(st(1, &[1, 0]), Rational::one())]);
    }

    /// The sorted-position binary search agrees with a naive linear scan on
    /// every (state, move, time) probe of a model with duplicate and
    /// adjacent keys.
    #[test]
    fn state_rule_index_matches_linear_scan() {
        let rules: Vec<StateTransition<Rational>> = (0..24)
            .map(|i| StateTransition {
                env: u64::from(i % 3),
                locals: vec![u64::from(i % 2), u64::from((i / 3) % 2)],
                time: i % 2,
                guard: match i % 4 {
                    0 => vec![],
                    1 => vec![MovePattern::Skip, MovePattern::Any],
                    2 => vec![MovePattern::Do(ActionId(i)), MovePattern::Any],
                    _ => vec![MovePattern::Any, MovePattern::Do(ActionId(i))],
                },
                outcomes: vec![(u64::from(100 + i), vec![0, 0], Rational::one())],
            })
            .collect();
        let m: TableModel<Rational> = TableModel {
            n_agents: 2,
            initial: vec![(0, vec![0, 0], Rational::one())],
            horizon: 2,
            state_transitions: rules,
            ..TableModel::default()
        };
        let joint_moves: Vec<Vec<Option<ActionId>>> = vec![
            vec![None, None],
            vec![Some(ActionId(2)), None],
            vec![None, Some(ActionId(7))],
            vec![Some(ActionId(1)), Some(ActionId(3))],
        ];
        for env in 0..4u64 {
            for l0 in 0..2u64 {
                for l1 in 0..3u64 {
                    for time in 0..3u32 {
                        let state = pak_core::state::SimpleState::new(env, vec![l0, l1]);
                        for mv in &joint_moves {
                            let linear = m.state_transitions.iter().find(|r| {
                                r.env == env
                                    && r.locals == [l0, l1]
                                    && r.time == time
                                    && (r.guard.is_empty()
                                        || r.guard.iter().zip(mv).all(|(g, m)| g.matches(m)))
                            });
                            let expected = linear.map_or_else(
                                || vec![(state.clone(), Rational::one())],
                                |r| {
                                    r.outcomes
                                        .iter()
                                        .map(|(e, ls, p)| {
                                            (
                                                pak_core::state::SimpleState::new(*e, ls.clone()),
                                                p.clone(),
                                            )
                                        })
                                        .collect()
                                },
                            );
                            assert_eq!(m.transition(&state, mv, time), expected);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_covers_state_transitions() {
        let base: TableModel<Rational> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], Rational::one())],
            horizon: 1,
            ..TableModel::default()
        };
        let mut guarded = base.clone();
        guarded.state_transitions.push(StateTransition {
            env: 0,
            locals: vec![0],
            time: 0,
            guard: vec![MovePattern::Skip],
            outcomes: vec![(1, vec![0], Rational::one())],
        });
        assert_ne!(base.fingerprint(), guarded.fingerprint());
        let mut reguarded = guarded.clone();
        reguarded.state_transitions[0].guard = vec![MovePattern::Any];
        assert_ne!(guarded.fingerprint(), reguarded.fingerprint());
    }
}
