//! # pak-protocol — probabilistic protocols and their unfolding into pps
//!
//! The paper relates protocols to purely probabilistic systems (§2.2): given
//! a prior over initial global states, probabilistic local protocols
//! `P_i : L_i → Δ(Act_i)` for every agent, and a (probabilistic)
//! environment, the runs of the joint protocol form a pps. This crate
//! implements that pipeline:
//!
//! * [`model::ProtocolModel`] — the joint-protocol abstraction. Locality is
//!   structural: an agent's move distribution is a function of its *local*
//!   state only.
//! * [`unfold`](unfold::unfold) — bounded-horizon enumeration of every
//!   probabilistic branching into a validated
//!   [`Pps`](pak_core::pps::Pps).
//! * [`messaging`] — the synchronous lossy-channel substrate of Example 1:
//!   per-message independent loss, delivery at end of round, never late.
//! * [`adversary`] — Halpern–Tuttle adversary families for handling
//!   non-determinism: one pps per fixed adversary.
//!
//! # Example
//!
//! ```
//! use pak_protocol::model::{CoinModel, COIN_ACT};
//! use pak_protocol::unfold::unfold;
//! use pak_core::prelude::*;
//! use pak_num::Rational;
//!
//! let model = CoinModel { heads_num: 3, heads_den: 4 };
//! let pps = unfold::<_, Rational>(&model).unwrap();
//! assert_eq!(pps.num_runs(), 2);
//! assert!(pps.is_proper(AgentId(0), COIN_ACT));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod generator;
pub mod messaging;
pub mod model;
pub mod unfold;

pub use adversary::AdversaryFamily;
pub use messaging::{AgentMove, LossyMessagingModel, Message, MessageProtocol, MsgGlobal};
pub use model::{ModelFingerprint, ProtocolModel};
pub use unfold::{unfold, unfold_with, CartesianMoves, UnfoldConfig, UnfoldError};
