//! Synchronous message passing over unreliable channels.
//!
//! This is the substrate of the paper's Example 1: a synchronous
//! message-passing system in which every message sent in a round is,
//! independently, lost with probability `loss` and otherwise delivered at
//! the end of the same round (never late).
//!
//! A user protocol implements [`MessageProtocol`] — per-round, per-agent
//! mixed moves (an optional action plus messages to send) and a
//! deterministic local-state update on delivery. Wrapping it in
//! [`LossyMessagingModel`] yields a
//! [`ProtocolModel`] whose environment
//! enumerates every loss pattern with its exact probability, ready for
//! unfolding into a pps or Monte-Carlo sampling.

use core::fmt::Debug;
use core::hash::Hash;

use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

use crate::model::ProtocolModel;

/// A message in flight: sender, recipient, and an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Message {
    /// The sending agent.
    pub from: AgentId,
    /// The receiving agent.
    pub to: AgentId,
    /// Protocol-defined payload.
    pub payload: u64,
}

/// An agent's move in one round: an optional action (recorded in the run
/// history as `does_i(α)`) plus any messages to send this round.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct AgentMove {
    /// The action performed, or `None` for a silent/skip move.
    pub action: Option<ActionId>,
    /// Messages sent this round: `(recipient, payload)` pairs. Duplicates
    /// are allowed (sending two copies increases delivery probability).
    pub sends: Vec<(AgentId, u64)>,
}

impl AgentMove {
    /// A move that does nothing.
    #[must_use]
    pub fn skip() -> Self {
        AgentMove::default()
    }

    /// A move that performs an action without sending.
    #[must_use]
    pub fn act(action: ActionId) -> Self {
        AgentMove {
            action: Some(action),
            sends: Vec::new(),
        }
    }

    /// A move that sends a single message without acting.
    #[must_use]
    pub fn send(to: AgentId, payload: u64) -> Self {
        AgentMove {
            action: None,
            sends: vec![(to, payload)],
        }
    }

    /// Adds a message to the move (builder style).
    #[must_use]
    pub fn and_send(mut self, to: AgentId, payload: u64) -> Self {
        self.sends.push((to, payload));
        self
    }

    /// Adds an action to the move (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the move already has an action.
    #[must_use]
    pub fn and_act(mut self, action: ActionId) -> Self {
        assert!(self.action.is_none(), "move already has an action");
        self.action = Some(action);
        self
    }
}

/// A synchronous message-passing protocol: the user-facing trait for systems
/// like Example 1's `FS`.
pub trait MessageProtocol<P: Probability> {
    /// An agent's local data (the library adds the time for synchrony).
    /// `Send + Sync` feeds the [`GlobalState`] bounds, which the threaded
    /// pps build pass relies on; local data is always plain values.
    type Local: Clone + Eq + Hash + Debug + Send + Sync + 'static;

    /// Number of agents.
    fn n_agents(&self) -> u32;

    /// Prior over initial joint local states.
    fn initial(&self) -> Vec<(Vec<Self::Local>, P)>;

    /// The protocol runs for times `0 .. horizon` (states up to time
    /// `horizon` appear in runs).
    fn horizon(&self) -> Time;

    /// Agent `agent`'s mixed move at its local state — may perform an
    /// action and/or send messages.
    fn step(&self, agent: AgentId, local: &Self::Local, time: Time) -> Vec<(AgentMove, P)>;

    /// Appends agent `agent`'s mixed move at `(local, time)` to `out` —
    /// the scratch-buffer sibling of [`MessageProtocol::step`], driven by
    /// [`LossyMessagingModel`]'s
    /// [`moves_into`](ProtocolModel::moves_into) on the unfolding hot
    /// path.
    ///
    /// The default delegates to [`MessageProtocol::step`]; native
    /// implementations must append exactly the entries `step` would
    /// return, in the same order, with bit-equal probabilities, without
    /// reading or modifying `out`'s existing contents.
    fn step_into(
        &self,
        agent: AgentId,
        local: &Self::Local,
        time: Time,
        out: &mut Vec<(AgentMove, P)>,
    ) {
        out.extend(self.step(agent, local, time));
    }

    /// Deterministic local-state update at the end of the round: the agent
    /// sees its own move and the messages actually delivered to it (sorted
    /// by sender then payload).
    fn receive(
        &self,
        agent: AgentId,
        local: &Self::Local,
        own_move: &AgentMove,
        inbox: &[Message],
        time: Time,
    ) -> Self::Local;
}

/// Global state of a message-passing system: the tuple of agent locals.
///
/// There is no hidden environment component: everything the environment
/// "knows" (which messages were lost) is reflected in the recipients'
/// locals at the end of the round, matching the paper's modelling where the
/// environment history records actions, not channel internals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MsgGlobal<L> {
    /// Per-agent local data.
    pub locals: Vec<L>,
}

impl<L: Clone + Eq + Hash + Debug + Send + Sync + 'static> GlobalState for MsgGlobal<L> {
    type Local = L;

    fn local(&self, agent: AgentId) -> L {
        self.locals[agent.index()].clone()
    }
}

/// Wraps a [`MessageProtocol`] with an unreliable-channel environment: each
/// message sent in a round is lost independently with probability `loss`.
///
/// # Examples
///
/// A one-round ping system (see `pak-systems` for full scenarios):
///
/// ```
/// use pak_protocol::messaging::*;
/// use pak_protocol::model::ProtocolModel;
/// use pak_protocol::unfold::unfold;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// #[derive(Debug)]
/// struct Ping;
/// impl MessageProtocol<Rational> for Ping {
///     type Local = u64;
///     fn n_agents(&self) -> u32 { 2 }
///     fn initial(&self) -> Vec<(Vec<u64>, Rational)> {
///         vec![(vec![0, 0], Rational::one())]
///     }
///     fn horizon(&self) -> u32 { 1 }
///     fn step(&self, agent: AgentId, _l: &u64, _t: u32) -> Vec<(AgentMove, Rational)> {
///         if agent == AgentId(0) {
///             vec![(AgentMove::send(AgentId(1), 7), Rational::one())]
///         } else {
///             vec![(AgentMove::skip(), Rational::one())]
///         }
///     }
///     fn receive(&self, _a: AgentId, l: &u64, _mv: &AgentMove, inbox: &[Message], _t: u32) -> u64 {
///         if inbox.is_empty() { *l } else { inbox[0].payload }
///     }
/// }
///
/// let model = LossyMessagingModel::new(Ping, Rational::from_ratio(1, 10));
/// let pps = unfold::<_, Rational>(&model).unwrap();
/// // Two runs: delivered (0.9) and lost (0.1).
/// assert_eq!(pps.num_runs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LossyMessagingModel<MP, P> {
    /// The wrapped protocol.
    protocol: MP,
    /// Per-message loss probability.
    loss: P,
}

impl<MP, P: Probability> LossyMessagingModel<MP, P> {
    /// Wraps `protocol` with per-message loss probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a valid probability in `[0, 1]`.
    pub fn new(protocol: MP, loss: P) -> Self {
        assert!(loss.is_valid_probability(), "loss must lie in [0, 1]");
        LossyMessagingModel { protocol, loss }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &MP {
        &self.protocol
    }

    /// The per-message loss probability.
    pub fn loss(&self) -> &P {
        &self.loss
    }

    /// Enumerates delivery outcomes for `messages`: each returned entry is
    /// `(delivered messages, probability)`. Loss probabilities 0 and 1
    /// short-circuit to a single outcome.
    fn delivery_outcomes(&self, messages: &[Message]) -> Vec<(Vec<Message>, P)> {
        if messages.is_empty() || self.loss.is_zero() {
            return vec![(messages.to_vec(), P::one())];
        }
        if self.loss.is_one() {
            return vec![(Vec::new(), P::one())];
        }
        let deliver = self.loss.one_minus();
        let n = messages.len();
        assert!(
            n < 24,
            "too many messages in one round for exact loss enumeration"
        );
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0u32..(1 << n) {
            let mut delivered = Vec::new();
            // Seed the accumulator from the first factor instead of
            // multiplying into `P::one()`; saves a mul per mask.
            let mut p: Option<P> = None;
            for (i, msg) in messages.iter().enumerate() {
                let f = if (mask >> i) & 1 == 1 {
                    delivered.push(*msg);
                    &deliver
                } else {
                    &self.loss
                };
                p = Some(match p {
                    None => f.clone(),
                    Some(q) => q.mul(f),
                });
            }
            out.push((delivered, p.unwrap_or_else(P::one)));
        }
        out
    }
}

impl<MP, P> ProtocolModel<P> for LossyMessagingModel<MP, P>
where
    MP: MessageProtocol<P> + Debug,
    P: Probability,
{
    type Global = MsgGlobal<MP::Local>;
    type Move = AgentMove;

    fn n_agents(&self) -> u32 {
        self.protocol.n_agents()
    }

    fn initial_states(&self) -> Vec<(Self::Global, P)> {
        self.protocol
            .initial()
            .into_iter()
            .map(|(locals, p)| (MsgGlobal { locals }, p))
            .collect()
    }

    fn is_terminal(&self, _state: &Self::Global, time: Time) -> bool {
        time >= self.protocol.horizon()
    }

    fn moves(&self, agent: AgentId, local: &MP::Local, time: Time) -> Vec<(AgentMove, P)> {
        self.protocol.step(agent, local, time)
    }

    fn action_of(&self, mv: &AgentMove) -> Option<ActionId> {
        mv.action
    }

    fn transition(
        &self,
        state: &Self::Global,
        moves: &[AgentMove],
        time: Time,
    ) -> Vec<(Self::Global, P)> {
        // Collect every message sent this round, tagged with its sender.
        let mut sent: Vec<Message> = Vec::new();
        for (a, mv) in moves.iter().enumerate() {
            for &(to, payload) in &mv.sends {
                sent.push(Message {
                    from: AgentId(a as u32),
                    to,
                    payload,
                });
            }
        }

        self.delivery_outcomes(&sent)
            .into_iter()
            .map(|(delivered, p)| {
                let mut locals = Vec::with_capacity(state.locals.len());
                for (a, local) in state.locals.iter().enumerate() {
                    let agent = AgentId(a as u32);
                    let mut inbox: Vec<Message> = delivered
                        .iter()
                        .copied()
                        .filter(|m| m.to == agent)
                        .collect();
                    inbox.sort();
                    locals.push(self.protocol.receive(agent, local, &moves[a], &inbox, time));
                }
                (MsgGlobal { locals }, p)
            })
            .collect()
    }

    fn moves_into(
        &self,
        agent: AgentId,
        local: &MP::Local,
        time: Time,
        out: &mut Vec<(AgentMove, P)>,
    ) {
        self.protocol.step_into(agent, local, time, out);
    }

    fn transition_into(
        &self,
        state: &Self::Global,
        moves: &[AgentMove],
        time: Time,
        out: &mut Vec<(Self::Global, P)>,
    ) {
        // Same enumeration as `transition`/`delivery_outcomes` — loss
        // patterns in mask order, mask bit `i` set meaning message `i` is
        // delivered — but successor states are written straight into the
        // caller's buffer and the per-outcome message buffers are reused
        // across masks instead of allocated per outcome. The smoke suite
        // (`tests/systems_unfold_smoke.rs`) proves the two paths emit
        // bit-identical distributions on every `pak-systems` protocol.
        let mut sent: Vec<Message> = Vec::new();
        for (a, mv) in moves.iter().enumerate() {
            for &(to, payload) in &mv.sends {
                sent.push(Message {
                    from: AgentId(a as u32),
                    to,
                    payload,
                });
            }
        }

        let next_state = |delivered: &[Message], inbox: &mut Vec<Message>| -> Self::Global {
            let mut locals = Vec::with_capacity(state.locals.len());
            for (a, local) in state.locals.iter().enumerate() {
                let agent = AgentId(a as u32);
                inbox.clear();
                inbox.extend(delivered.iter().copied().filter(|m| m.to == agent));
                inbox.sort_unstable();
                locals.push(self.protocol.receive(agent, local, &moves[a], inbox, time));
            }
            MsgGlobal { locals }
        };

        let mut inbox: Vec<Message> = Vec::new();
        if sent.is_empty() || self.loss.is_zero() {
            out.push((next_state(&sent, &mut inbox), P::one()));
            return;
        }
        if self.loss.is_one() {
            out.push((next_state(&[], &mut inbox), P::one()));
            return;
        }
        let deliver = self.loss.one_minus();
        let n = sent.len();
        assert!(
            n < 24,
            "too many messages in one round for exact loss enumeration"
        );
        let mut delivered: Vec<Message> = Vec::with_capacity(n);
        for mask in 0u32..(1 << n) {
            delivered.clear();
            // Seed the accumulator from the first factor instead of
            // multiplying into `P::one()`; saves a mul per mask.
            let mut p: Option<P> = None;
            for (i, msg) in sent.iter().enumerate() {
                let f = if (mask >> i) & 1 == 1 {
                    delivered.push(*msg);
                    &deliver
                } else {
                    &self.loss
                };
                p = Some(match p {
                    None => f.clone(),
                    Some(q) => q.mul(f),
                });
            }
            out.push((next_state(&delivered, &mut inbox), p.unwrap_or_else(P::one)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;
    use pak_core::prelude::*;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// Agent 0 sends `copies` identical messages to agent 1 in round 0;
    /// agent 1's local becomes 1 if it received at least one.
    #[derive(Debug)]
    struct MultiSend {
        copies: usize,
    }

    impl MessageProtocol<Rational> for MultiSend {
        type Local = u64;

        fn n_agents(&self) -> u32 {
            2
        }

        fn initial(&self) -> Vec<(Vec<u64>, Rational)> {
            vec![(vec![0, 0], Rational::one())]
        }

        fn horizon(&self) -> u32 {
            1
        }

        fn step(&self, agent: AgentId, _local: &u64, _time: u32) -> Vec<(AgentMove, Rational)> {
            if agent == AgentId(0) {
                let mut mv = AgentMove::skip();
                for _ in 0..self.copies {
                    mv = mv.and_send(AgentId(1), 42);
                }
                vec![(mv, Rational::one())]
            } else {
                vec![(AgentMove::skip(), Rational::one())]
            }
        }

        fn receive(
            &self,
            _agent: AgentId,
            local: &u64,
            _own: &AgentMove,
            inbox: &[Message],
            _time: u32,
        ) -> u64 {
            if inbox.is_empty() {
                *local
            } else {
                1
            }
        }
    }

    #[test]
    fn duplicate_sends_boost_delivery_exactly() {
        // Two copies, loss 0.1: P(received) = 1 − 0.01 = 0.99 — the
        // Example 1 arithmetic.
        let model = LossyMessagingModel::new(MultiSend { copies: 2 }, r(1, 10));
        let pps = unfold::<_, Rational>(&model).unwrap();
        // Identical successor states merge: received (0.99) vs not (0.01).
        assert_eq!(pps.num_runs(), 2);
        let got = StateFact::new("agent1 got it", |g: &MsgGlobal<u64>| g.locals[1] == 1);
        let ev = pps.fact_event_at_time(&got, 1);
        assert_eq!(pps.measure(&ev), r(99, 100));
    }

    #[test]
    fn loss_zero_and_one_short_circuit() {
        let reliable = LossyMessagingModel::new(MultiSend { copies: 1 }, Rational::zero());
        let pps = unfold::<_, Rational>(&reliable).unwrap();
        assert_eq!(pps.num_runs(), 1);

        let dead = LossyMessagingModel::new(MultiSend { copies: 1 }, Rational::one());
        let pps = unfold::<_, Rational>(&dead).unwrap();
        assert_eq!(pps.num_runs(), 1);
        let got = StateFact::new("got", |g: &MsgGlobal<u64>| g.locals[1] == 1);
        assert!(pps.measure(&pps.fact_event_at_time(&got, 1)).is_zero());
    }

    #[test]
    #[should_panic(expected = "loss must lie in [0, 1]")]
    fn invalid_loss_rejected() {
        let _ = LossyMessagingModel::new(MultiSend { copies: 1 }, r(3, 2));
    }

    #[test]
    fn agent_move_builders() {
        let mv = AgentMove::send(AgentId(1), 5)
            .and_send(AgentId(1), 6)
            .and_act(ActionId(3));
        assert_eq!(mv.sends.len(), 2);
        assert_eq!(mv.action, Some(ActionId(3)));
        assert_eq!(AgentMove::skip(), AgentMove::default());
        assert_eq!(AgentMove::act(ActionId(1)).action, Some(ActionId(1)));
    }

    #[test]
    #[should_panic(expected = "already has an action")]
    fn double_action_rejected() {
        let _ = AgentMove::act(ActionId(0)).and_act(ActionId(1));
    }

    #[test]
    fn delivery_outcomes_probabilities_sum_to_one() {
        let model = LossyMessagingModel::new(MultiSend { copies: 3 }, r(1, 4));
        let msgs = vec![
            Message {
                from: AgentId(0),
                to: AgentId(1),
                payload: 1,
            },
            Message {
                from: AgentId(0),
                to: AgentId(1),
                payload: 2,
            },
            Message {
                from: AgentId(0),
                to: AgentId(1),
                payload: 3,
            },
        ];
        let outs = model.delivery_outcomes(&msgs);
        assert_eq!(outs.len(), 8);
        let total: Rational = outs.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one());
    }

    #[test]
    fn inbox_sorted_deterministically() {
        // Sorting is by sender then payload; just exercise Ord on Message.
        let a = Message {
            from: AgentId(0),
            to: AgentId(1),
            payload: 9,
        };
        let b = Message {
            from: AgentId(0),
            to: AgentId(1),
            payload: 10,
        };
        let c = Message {
            from: AgentId(1),
            to: AgentId(1),
            payload: 0,
        };
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
