//! Adversaries: fixing non-deterministic choices (Halpern–Tuttle).
//!
//! The paper (§2, following \[24\]) handles non-determinism by *fixing the
//! adversary*: once every non-deterministic choice (who is faulty, what the
//! initial values are, how the scheduler behaves) is fixed, all remaining
//! choices are purely probabilistic and the runs form a pps. Reasoning then
//! quantifies over the finitely many adversaries.
//!
//! [`AdversaryFamily`] captures this: a named finite family of protocol
//! models, one per adversary, with helpers to unfold and check a property
//! against every member.

use pak_core::pps::Pps;
use pak_core::prob::Probability;

use crate::model::ProtocolModel;
use crate::unfold::{unfold_with, UnfoldConfig, UnfoldError};

/// A finite family of protocol models indexed by adversary.
///
/// # Examples
///
/// ```
/// use pak_protocol::adversary::AdversaryFamily;
/// use pak_protocol::model::CoinModel;
/// use pak_num::Rational;
///
/// // Non-deterministic bias: the adversary picks the coin's bias.
/// let family: AdversaryFamily<CoinModel> = AdversaryFamily::new(vec![
///     ("fair".into(), CoinModel { heads_num: 1, heads_den: 2 }),
///     ("rigged".into(), CoinModel { heads_num: 9, heads_den: 10 }),
/// ]);
/// assert_eq!(family.len(), 2);
///
/// // A property must hold for EVERY adversary.
/// let all_good = family
///     .check_all::<Rational>(|_, pps| pps.num_runs() == 2)
///     .unwrap();
/// assert!(all_good);
/// ```
#[derive(Debug, Clone)]
pub struct AdversaryFamily<M> {
    members: Vec<(String, M)>,
}

impl<M> AdversaryFamily<M> {
    /// Creates a family from named members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty — reasoning over "no adversaries" is
    /// almost always a specification bug.
    #[must_use]
    pub fn new(members: Vec<(String, M)>) -> Self {
        assert!(!members.is_empty(), "adversary family must be non-empty");
        AdversaryFamily { members }
    }

    /// The number of adversaries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family is empty (never true for constructed families).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over `(name, model)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &M)> {
        self.members.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Unfolds every member into its pps.
    ///
    /// # Errors
    ///
    /// Returns the first [`UnfoldError`] encountered, tagged with the
    /// adversary's name.
    #[allow(clippy::type_complexity)] // named-pps list with named-error tag
    pub fn unfold_all<P>(&self) -> Result<Vec<(String, Pps<M::Global, P>)>, (String, UnfoldError)>
    where
        M: ProtocolModel<P>,
        P: Probability,
    {
        let config = UnfoldConfig::default();
        self.members
            .iter()
            .map(|(name, model)| {
                unfold_with(model, &config)
                    .map(|pps| (name.clone(), pps))
                    .map_err(|e| (name.clone(), e))
            })
            .collect()
    }

    /// Checks a predicate on every adversary's pps; `true` iff it holds for
    /// all of them (the Halpern–Tuttle quantification).
    ///
    /// # Errors
    ///
    /// Returns the first [`UnfoldError`] encountered, tagged with the
    /// adversary's name.
    pub fn check_all<P>(
        &self,
        mut pred: impl FnMut(&str, &Pps<M::Global, P>) -> bool,
    ) -> Result<bool, (String, UnfoldError)>
    where
        M: ProtocolModel<P>,
        P: Probability,
    {
        for (name, pps) in self.unfold_all()? {
            if !pred(&name, &pps) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CoinModel, COIN_ACT};
    use pak_core::fact::StateFact;
    use pak_core::prelude::*;
    use pak_num::Rational;

    fn family() -> AdversaryFamily<CoinModel> {
        AdversaryFamily::new(vec![
            (
                "p=1/2".into(),
                CoinModel {
                    heads_num: 1,
                    heads_den: 2,
                },
            ),
            (
                "p=99/100".into(),
                CoinModel {
                    heads_num: 99,
                    heads_den: 100,
                },
            ),
        ])
    }

    #[test]
    fn unfold_all_members() {
        let f = family();
        let all = f.unfold_all::<Rational>().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "p=1/2");
        for (_, pps) in &all {
            assert!(pps.measure(&pps.all_runs()).is_one());
        }
    }

    #[test]
    fn property_quantified_over_adversaries() {
        let f = family();
        let heads = StateFact::new("heads", |g: &crate::model::CoinState| g.heads);
        // "constraint ≥ 0.95 for every adversary" fails (the fair coin).
        let strong = f
            .check_all::<Rational>(|_, pps| {
                let a = ActionAnalysis::new(pps, AgentId(0), COIN_ACT, &heads).unwrap();
                a.satisfies_constraint(&Rational::from_ratio(19, 20))
            })
            .unwrap();
        assert!(!strong);
        // "constraint ≥ 0.5 for every adversary" holds.
        let weak = f
            .check_all::<Rational>(|_, pps| {
                let a = ActionAnalysis::new(pps, AgentId(0), COIN_ACT, &heads).unwrap();
                a.satisfies_constraint(&Rational::from_ratio(1, 2))
            })
            .unwrap();
        assert!(weak);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_family_rejected() {
        let _: AdversaryFamily<CoinModel> = AdversaryFamily::new(vec![]);
    }

    #[test]
    fn iter_and_len() {
        let f = family();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        let names: Vec<&str> = f.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["p=1/2", "p=99/100"]);
    }
}
