//! # pak-server — a fault-tolerant epistemic query service
//!
//! A long-lived serving layer over `pak-engine`: worker threads behind a
//! bounded queue answer [`Query`]s (batched verdicts, exact measures)
//! against cached unfolded trees, under per-request deadlines.
//!
//! The robustness contract, end to end:
//!
//! - **Admission control** — a full queue rejects at submission
//!   ([`ServiceError::Overloaded`]); accepted requests are never
//!   silently dropped, even across shutdown.
//! - **Deadlines & cancellation** — every request carries a
//!   `CancelToken`; unfolding polls it at level boundaries (aborting
//!   via the engine's level rollback, so partial work never corrupts a
//!   handle) and evaluation polls at subformula boundaries (completed
//!   truth tables stay memoized, so retries don't repeat work).
//! - **Graceful degradation** — a deadline-blown *measure* query over
//!   an epistemic-free formula can fall back to the `pak-sim`
//!   Monte-Carlo tier, answering [`Answer::Approximate`] with a Wilson
//!   confidence interval instead of failing.
//! - **Panic isolation** — a panicking request is answered
//!   ([`ServiceError::WorkerPanicked`]) and the worker keeps serving
//!   with a fresh session; the shared tree cache is unaffected.
//! - **Bounded memory** — the shared `PpsCache` evicts least-recently
//!   used trees over its byte/entry budget; in-flight readers hold
//!   `Arc`s and are never invalidated.
//!
//! See [`PakServer`] for a usage example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod types;

pub use service::{PakServer, Ticket};
pub use types::{Answer, FallbackConfig, Query, ServerConfig, ServiceError, ShutdownSummary};
