//! The long-lived query service: bounded queue, panic-isolated workers,
//! deadlines, degradation, graceful shutdown.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use pak_core::cancel::CancelToken;
use pak_core::failpoint::{self, Fault};
use pak_core::ids::Time;
use pak_core::prob::Probability;
use pak_engine::{CacheStats, CachedUnfolder, Evaluator, PpsCache};
use pak_logic::Formula;
use pak_protocol::model::{ModelFingerprint, ProtocolModel};
use pak_protocol::unfold::UnfoldConfig;
use pak_sim::approx::estimate_formula_measure;

use crate::types::{Answer, FallbackConfig, Query, ServerConfig, ServiceError, ShutdownSummary};

/// Lifetime counters shared by the submit path and the workers.
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    deadline_exceeded: AtomicU64,
    worker_panics: AtomicU64,
    unfold_errors: AtomicU64,
}

struct Job<G: pak_core::state::GlobalState, P: Probability> {
    query: Query<G, P>,
    cancel: CancelToken,
    reply: SyncSender<Result<Answer<P>, ServiceError>>,
}

/// A pending request: await the answer with [`Ticket::wait`], or trip
/// the request's token early with [`Ticket::cancel`].
#[derive(Debug)]
pub struct Ticket<P: Probability> {
    rx: Receiver<Result<Answer<P>, ServiceError>>,
    cancel: CancelToken,
}

impl<P: Probability> Ticket<P> {
    /// Blocks until the request completes. Accepted requests are always
    /// answered — workers reply even on panic (panic isolation), and
    /// shutdown drains the queue before joining — so this returns
    /// whatever the worker produced. [`ServiceError::WorkerPanicked`]
    /// is returned if the serving worker died so hard its reply never
    /// arrived (only reachable through fault injection).
    pub fn wait(self) -> Result<Answer<P>, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerPanicked))
    }

    /// Trips this request's cancellation token: the worker abandons it
    /// at the next level/subformula boundary and answers
    /// [`ServiceError::DeadlineExceeded`] (or degrades, for measure
    /// queries with a fallback tier).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// A fault-tolerant epistemic query service over one protocol model.
///
/// `PakServer::start` spawns `workers` threads sharing one bounded
/// queue and one [`PpsCache`]. Each worker retains its own
/// [`CachedUnfolder`] session, so horizon-by-horizon growth is
/// incremental per worker while finished trees are shared through the
/// cache. The robustness contract:
///
/// - **Admission control**: a full queue rejects at submission with
///   [`ServiceError::Overloaded`]; nothing is silently dropped later.
/// - **Deadlines**: each request carries a [`CancelToken`]; the hot
///   paths poll it at level and subformula boundaries, and a trip
///   surfaces as [`ServiceError::DeadlineExceeded`] — or, for measure
///   queries over epistemic-free formulas with a
///   [`FallbackConfig`], as a degraded [`Answer::Approximate`].
/// - **Panic isolation**: a panic while serving a request is caught,
///   answered as [`ServiceError::WorkerPanicked`], and the worker
///   discards its session (the shared cache survives) and keeps
///   serving.
/// - **Graceful shutdown**: [`PakServer::shutdown`] stops accepting,
///   then drains every accepted request before joining the workers and
///   reporting a [`ShutdownSummary`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pak_server::{PakServer, Query, Answer, ServerConfig};
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_logic::Formula;
/// use pak_core::ids::AgentId;
///
/// let model = Arc::new(CoinModel { heads_num: 3, heads_den: 4 });
/// let server = PakServer::<_, f64>::start(model, ServerConfig::default());
/// let ticket = server
///     .submit(Query::Verdicts {
///         horizon: 1,
///         formulas: vec![Formula::does(AgentId(0), COIN_ACT).eventually()],
///     })
///     .unwrap();
/// match ticket.wait().unwrap() {
///     Answer::Verdicts(v) => assert!(v[0].satisfiable),
///     other => panic!("unexpected answer {other:?}"),
/// }
/// let summary = server.shutdown();
/// assert_eq!(summary.served, 1);
/// ```
pub struct PakServer<M, P>
where
    M: ProtocolModel<P> + ModelFingerprint + Send + Sync + 'static,
    P: Probability + Send + Sync,
{
    tx: Option<SyncSender<Job<M::Global, P>>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<PpsCache<M::Global, P>>,
    stats: Arc<Stats>,
    accepting: Arc<AtomicBool>,
    default_deadline: Option<Duration>,
}

impl<M, P> PakServer<M, P>
where
    M: ProtocolModel<P> + ModelFingerprint + Send + Sync + 'static,
    P: Probability + Send + Sync,
{
    /// Starts the service: spawns the worker pool and returns the
    /// submission handle. `config.workers` is clamped to at least one.
    #[must_use]
    pub fn start(model: Arc<M>, config: ServerConfig) -> Self {
        let n_workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job<M::Global, P>>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let cache = Arc::new(PpsCache::with_budget(config.cache));
        let stats = Arc::new(Stats::default());
        let accepting = Arc::new(AtomicBool::new(true));
        let workers = (0..n_workers)
            .map(|_| {
                let model = Arc::clone(&model);
                let cache = Arc::clone(&cache);
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                let unfold = config.unfold.clone();
                let fallback = config.fallback;
                std::thread::spawn(move || {
                    worker_loop(&model, &cache, &rx, &stats, &unfold, fallback)
                })
            })
            .collect();
        PakServer {
            tx: Some(tx),
            workers,
            cache,
            stats,
            accepting,
            default_deadline: config.default_deadline,
        }
    }

    /// Submits a query under the configured default deadline.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the queue is full (nothing was
    /// enqueued; resubmitting later is safe), or
    /// [`ServiceError::ShuttingDown`] after [`PakServer::shutdown`] has
    /// begun.
    pub fn submit(&self, query: Query<M::Global, P>) -> Result<Ticket<P>, ServiceError> {
        self.submit_with_deadline(query, self.default_deadline)
    }

    /// Submits a query with an explicit latency budget (overriding the
    /// configured default; `None` removes the deadline entirely).
    ///
    /// # Errors
    ///
    /// As [`PakServer::submit`].
    pub fn submit_with_deadline(
        &self,
        query: Query<M::Global, P>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<P>, ServiceError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let cancel = deadline.map_or_else(CancelToken::new, CancelToken::with_deadline);
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            query,
            cancel: cancel.clone(),
            reply: reply_tx,
        };
        let tx = self.tx.as_ref().expect("sender alive until shutdown");
        match tx.try_send(job) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket {
                    rx: reply_rx,
                    cancel,
                })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// A live snapshot of the shared tree cache's counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A live snapshot of the lifetime counters (the same numbers a
    /// [`ShutdownSummary`] reports, plus the current cache stats).
    #[must_use]
    pub fn summary(&self) -> ShutdownSummary {
        ShutdownSummary {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            served: self.stats.served.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Relaxed),
            deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::Relaxed),
            worker_panics: self.stats.worker_panics.load(Ordering::Relaxed),
            unfold_errors: self.stats.unfold_errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Gracefully shuts the service down: stops accepting, lets the
    /// workers drain every accepted request (their answers stay
    /// retrievable through the outstanding [`Ticket`]s), joins the
    /// pool, and reports what happened.
    #[must_use]
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.stop_and_join();
        self.summary()
    }

    fn stop_and_join(&mut self) {
        self.accepting.store(false, Ordering::Release);
        // Dropping the sender is the drain signal: workers keep
        // receiving queued jobs until the channel reports empty-and-
        // disconnected, then exit their loops.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M, P> Drop for PakServer<M, P>
where
    M: ProtocolModel<P> + ModelFingerprint + Send + Sync + 'static,
    P: Probability + Send + Sync,
{
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop<M, P>(
    model: &Arc<M>,
    cache: &PpsCache<M::Global, P>,
    rx: &Mutex<Receiver<Job<M::Global, P>>>,
    stats: &Stats,
    unfold: &UnfoldConfig,
    fallback: Option<FallbackConfig>,
) where
    M: ProtocolModel<P> + ModelFingerprint + Send + Sync,
    P: Probability + Send + Sync,
{
    let model_ref: &M = model;
    // The worker's incremental-unfold session. `None` until first used,
    // and reset to `None` after a caught panic: a half-poisoned handle
    // is discarded wholesale while the shared cache (only ever holding
    // fully validated snapshots) keeps serving.
    let mut session: Option<CachedUnfolder<'_, M, P>> = None;
    loop {
        let msg = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
            // The queue lock is released before the job runs, so other
            // workers keep pulling while this one computes.
        };
        let Ok(job) = msg else { break };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match failpoint::check("server.worker") {
                None | Some(Fault::Error) => {}
                Some(Fault::Cancel) => job.cancel.cancel(),
                Some(Fault::Panic) => panic!("failpoint server.worker: injected panic"),
            }
            handle_job(
                model_ref,
                &mut session,
                cache,
                unfold,
                fallback.as_ref(),
                &job,
            )
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(_) => {
                session = None;
                Err(ServiceError::WorkerPanicked)
            }
        };
        match &result {
            Ok(Answer::Approximate { .. }) => {
                stats.served.fetch_add(1, Ordering::Relaxed);
                stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {
                stats.served.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::DeadlineExceeded) => {
                stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::WorkerPanicked) => {
                stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Unfold(_)) => {
                stats.unfold_errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        // A submitter that dropped its ticket makes this send fail;
        // that is their prerogative, not an error.
        let _ = job.reply.send(result);
    }
}

fn handle_job<'m, M, P>(
    model: &'m M,
    session: &mut Option<CachedUnfolder<'m, M, P>>,
    cache: &PpsCache<M::Global, P>,
    unfold: &UnfoldConfig,
    fallback: Option<&FallbackConfig>,
    job: &Job<M::Global, P>,
) -> Result<Answer<P>, ServiceError>
where
    M: ProtocolModel<P> + ModelFingerprint,
    P: Probability,
{
    if session.is_none() {
        *session = Some(CachedUnfolder::new(model, unfold.clone())?);
    }
    let sess = session.as_mut().expect("session just initialised");
    match &job.query {
        Query::Verdicts { horizon, formulas } => {
            let tree = sess.pps_at_with(cache, *horizon, &job.cancel)?;
            let mut ev = Evaluator::new(&tree);
            ev.evaluate_batch_with(formulas, &job.cancel)
                .map(Answer::Verdicts)
                .map_err(|_| ServiceError::DeadlineExceeded)
        }
        Query::Measure {
            horizon,
            time,
            formula,
        } => {
            let exact = sess
                .pps_at_with(cache, *horizon, &job.cancel)
                .map_err(ServiceError::from)
                .and_then(|tree| {
                    let mut ev = Evaluator::new(&tree);
                    ev.measure_at_time_with(formula, *time, &job.cancel)
                        .map_err(|_| ServiceError::DeadlineExceeded)
                });
            match exact {
                Ok(p) => Ok(Answer::Exact(p)),
                Err(ServiceError::DeadlineExceeded) => degrade(model, fallback, formula, *time),
                Err(e) => Err(e),
            }
        }
    }
}

/// The degradation path: a deadline-blown measure query falls back to
/// the Monte-Carlo tier on a fresh (trial-bounded) budget. Epistemic
/// formulas cannot degrade soundly and keep the deadline error.
fn degrade<M, P>(
    model: &M,
    fallback: Option<&FallbackConfig>,
    formula: &Formula<M::Global, P>,
    time: Time,
) -> Result<Answer<P>, ServiceError>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let Some(fb) = fallback else {
        return Err(ServiceError::DeadlineExceeded);
    };
    match estimate_formula_measure(model, fb.seed, fb.trials, formula, time) {
        Ok(est) => {
            let (ci_low, ci_high) = est.proportion.wilson(fb.z);
            Ok(Answer::Approximate {
                estimate: est.proportion.point(),
                ci_low,
                ci_high,
                trials: est.proportion.trials,
            })
        }
        Err(_) => Err(ServiceError::DeadlineExceeded),
    }
}
