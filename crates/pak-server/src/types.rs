//! Request, response, error, and configuration types of the service.

use std::time::Duration;

use pak_core::ids::Time;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_engine::{CacheBudget, CacheStats, Verdict};
use pak_logic::Formula;
use pak_protocol::unfold::{UnfoldConfig, UnfoldError};

/// How the service is provisioned: worker count, queue bound, default
/// latency budget, unfold limits, cache budget, and the optional
/// Monte-Carlo fallback tier.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests (at least one).
    pub workers: usize,
    /// Bound on queued (accepted but unstarted) requests; a full queue
    /// rejects with [`ServiceError::Overloaded`] instead of growing.
    pub queue_capacity: usize,
    /// Latency budget applied to every request that does not carry its
    /// own; `None` means requests run without a deadline by default.
    pub default_deadline: Option<Duration>,
    /// Limits for every unfold the service performs (`max_nodes`,
    /// `max_depth`; the `horizon` field is ignored — horizons come per
    /// query).
    pub unfold: UnfoldConfig,
    /// Eviction budget for the service's tree cache.
    pub cache: CacheBudget,
    /// When set, deadline-blown *measure* queries over epistemic-free
    /// formulas degrade to a Monte-Carlo estimate instead of failing.
    pub fallback: Option<FallbackConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            unfold: UnfoldConfig::default(),
            cache: CacheBudget::default(),
            fallback: None,
        }
    }
}

/// The Monte-Carlo degradation tier's provisioning (see
/// [`pak_sim::approx`]).
#[derive(Debug, Clone, Copy)]
pub struct FallbackConfig {
    /// Trials per degraded query. The fallback runs to completion on a
    /// *fresh* budget — by the time it starts, the deadline has already
    /// been spent on the exact attempt — so this bounds its latency.
    pub trials: u64,
    /// Base RNG seed; degraded answers are deterministic per seed.
    pub seed: u64,
    /// The z-score of the reported confidence interval (2.576 ≈ 99%).
    pub z: f64,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        FallbackConfig {
            trials: 4000,
            seed: 0x5EED,
            z: 2.576,
        }
    }
}

/// One unit of work: which tree to serve and what to compute on it.
#[derive(Debug, Clone)]
pub enum Query<G: GlobalState, P: Probability> {
    /// Batched verdicts for `formulas` against the tree at `horizon`.
    Verdicts {
        /// Horizon to unfold (or fetch from cache).
        horizon: Time,
        /// The formulas to evaluate, as one shared-subformula batch.
        formulas: Vec<Formula<G, P>>,
    },
    /// The measure `µ_T({r : (r, time) |= ϕ})` against the tree at
    /// `horizon` — the query shape that can degrade to the Monte-Carlo
    /// tier under deadline pressure.
    Measure {
        /// Horizon to unfold (or fetch from cache).
        horizon: Time,
        /// The time at which to measure.
        time: Time,
        /// The formula whose measure is taken.
        formula: Formula<G, P>,
    },
}

/// A successful answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer<P: Probability> {
    /// Verdicts for a [`Query::Verdicts`] batch, in formula order.
    Verdicts(Vec<Verdict>),
    /// The exact measure for a [`Query::Measure`].
    Exact(P),
    /// A degraded answer for a [`Query::Measure`] whose exact
    /// evaluation blew its deadline: a Monte-Carlo point estimate with
    /// a Wilson confidence interval at the configured z.
    Approximate {
        /// The point estimate of the measure.
        estimate: f64,
        /// Lower Wilson bound.
        ci_low: f64,
        /// Upper Wilson bound.
        ci_high: f64,
        /// Trials behind the estimate.
        trials: u64,
    },
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded queue was full at submission; nothing was enqueued.
    /// Back off and resubmit.
    Overloaded,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request's deadline passed before an exact answer was ready
    /// and no degradation applied (verdict queries, epistemic formulas,
    /// or no fallback tier configured).
    DeadlineExceeded,
    /// The worker processing this request panicked. The worker itself
    /// survives (panic isolation) with a fresh session; resubmitting is
    /// safe.
    WorkerPanicked,
    /// Unfolding the requested tree failed (size caps, model errors).
    Unfold(UnfoldError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "work queue is full; request rejected"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::WorkerPanicked => write!(f, "worker panicked while serving the request"),
            ServiceError::Unfold(e) => write!(f, "unfold failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Unfold(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnfoldError> for ServiceError {
    fn from(e: UnfoldError) -> Self {
        match e {
            UnfoldError::Cancelled => ServiceError::DeadlineExceeded,
            other => ServiceError::Unfold(other),
        }
    }
}

/// What the service did over its lifetime, reported by
/// [`PakServer::shutdown`](crate::PakServer::shutdown) after the drain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShutdownSummary {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests answered successfully (exact or degraded).
    pub served: u64,
    /// Submissions rejected with [`ServiceError::Overloaded`].
    pub rejected: u64,
    /// Served requests that degraded to the Monte-Carlo tier.
    pub degraded: u64,
    /// Requests that failed with [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests that failed with [`ServiceError::WorkerPanicked`].
    pub worker_panics: u64,
    /// Requests that failed with [`ServiceError::Unfold`].
    pub unfold_errors: u64,
    /// The tree cache's counters at shutdown (hits, misses, evictions,
    /// occupancy).
    pub cache: CacheStats,
}
