//! Batched bottom-up formula evaluation.
//!
//! [`Evaluator`] answers the same questions as
//! [`ModelChecker`](pak_logic::ModelChecker) — validity, satisfiability,
//! counterexamples, events and measures at a time — but computes them
//! from per-time *truth bitsets* instead of re-walking the tree per
//! point:
//!
//! 1. The query formula is folded into the shared [`FormulaInterner`],
//!    deduplicating structurally equal subformulas (across queries too —
//!    the interner lives as long as the evaluator).
//! 2. Every not-yet-evaluated subformula id, in ascending (bottom-up)
//!    order, gets one [`RunSet`] per time `t ∈ 0..=horizon`: the set of
//!    runs `r` such that the *live* point `(r, t)` satisfies it. The
//!    tables obey the invariant `truth[ϕ][t] ⊆ live(t)` — dead points
//!    carry no truth, exactly the contract of [`Formula::eval_at`].
//! 3. Verdicts are read off the root's table with bitset arithmetic.
//!
//! The win over per-point recursion is asymptotic, not incidental:
//! `K_i ϕ` and `B_i^{≥p} ϕ` are decided **once per information cell**
//! (a subset test / one conditional measure against `ϕ`'s bitset) and
//! the verdict broadcast to every member point, where the naive checker
//! re-walks the whole cell from each of its points; nested modalities
//! compound the gap. Temporal operators become one backward pass over
//! the horizon. Everything is proved bit-identical to the naive checker
//! by `tests/engine_differential.rs`.

use pak_core::cancel::CancelToken;
use pak_core::event::RunSet;
use pak_core::failpoint::{self, Fault};
use pak_core::ids::{CellId, Point, Time};
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_logic::Formula;

use crate::intern::{FormulaInterner, Shape, SubId};

/// Error returned by the cancellable evaluator entry points
/// ([`Evaluator::evaluate_batch_with`],
/// [`Evaluator::measure_at_time_with`]) when the [`CancelToken`] trips
/// before the query's truth tables are complete.
///
/// Cancellation is clean: every truth table computed before the trip
/// stays valid and memoized, so retrying the same query on the same
/// evaluator resumes where it stopped and returns bit-identical results
/// to an uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation was cancelled (deadline or explicit cancel)")
    }
}

impl std::error::Error for Cancelled {}

/// The summary a batched evaluation returns per formula — the answers
/// [`ModelChecker`](pak_logic::ModelChecker) gives through `valid`,
/// `satisfiable`, `counterexample` and `satisfying_points`, produced in
/// one pass over the root truth table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The formula holds at every live point.
    pub valid: bool,
    /// The formula holds at some live point.
    pub satisfiable: bool,
    /// The first live point (in `(run, time)` order) at which the formula
    /// fails, if any — `None` exactly when `valid`.
    pub counterexample: Option<Point>,
    /// How many live points satisfy the formula.
    pub satisfying_points: usize,
}

/// A batched, memoizing formula evaluator bound to one system.
///
/// Holds the interner and every computed truth table for the lifetime of
/// the borrow, so repeated and overlapping queries against the same tree
/// pay only for subformulas they have not seen before. For one-shot
/// single-formula checks the naive [`ModelChecker`](pak_logic::ModelChecker)
/// remains available (and is the differential reference).
///
/// # Examples
///
/// ```
/// use pak_engine::Evaluator;
/// use pak_logic::{Formula, ModelChecker};
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// let h = b.initial(SimpleState::new(1, vec![1]), Rational::from_ratio(3, 4))?;
/// let t = b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 4))?;
/// let pps = b.build()?;
///
/// let heads = Formula::atom(StateFact::new("heads", |g: &SimpleState| g.env == 1));
/// let knows = Formula::knows(AgentId(0), heads.clone());
///
/// let mut ev = Evaluator::new(&pps);
/// let verdicts = ev.evaluate_batch(&[heads.clone(), knows.clone()]);
/// assert!(!verdicts[0].valid && verdicts[0].satisfiable);
/// assert!(verdicts[1].satisfiable); // locals reveal the coin here
///
/// // Bit-identical to the naive checker, point for point.
/// let mc = ModelChecker::new(&pps);
/// assert_eq!(ev.event_at_time(&knows, 0), mc.event_at_time(&knows, 0));
/// # Ok::<(), PpsError>(())
/// ```
pub struct Evaluator<'p, G: GlobalState, P: Probability> {
    pps: &'p Pps<G, P>,
    interner: FormulaInterner<G, P>,
    /// `live[t]`: the runs alive at time `t`, for `t ∈ 0..=horizon`.
    live: Vec<RunSet>,
    /// `truth[id][t]`: runs whose live point `(r, t)` satisfies subformula
    /// `id`. An empty inner `Vec` marks "not computed yet" (computed
    /// tables always have `horizon + 1 ≥ 1` entries).
    truth: Vec<Vec<RunSet>>,
    /// Cell ids grouped as `[agent][time]`, built on the first modal
    /// query (one pass over `pps.cells()`).
    cells_at: Option<Vec<Vec<Vec<CellId>>>>,
}

impl<'p, G: GlobalState, P: Probability> Evaluator<'p, G, P> {
    /// Binds an evaluator to a system.
    #[must_use]
    pub fn new(pps: &'p Pps<G, P>) -> Self {
        let times = pps.horizon() as usize + 1;
        let live = (0..times).map(|t| pps.live_runs_at(t as Time)).collect();
        Evaluator {
            pps,
            interner: FormulaInterner::new(),
            live,
            truth: Vec::new(),
            cells_at: None,
        }
    }

    /// The underlying system.
    #[must_use]
    pub fn pps(&self) -> &'p Pps<G, P> {
        self.pps
    }

    /// How many distinct subformulas have been interned (and evaluated)
    /// so far — the sharing diagnostic: batching `n` queries that overlap
    /// keeps this well below the sum of their tree sizes.
    #[must_use]
    pub fn num_subformulas(&self) -> usize {
        self.interner.len()
    }

    /// Interns `f` and fills truth tables for every subformula that does
    /// not have one yet, children first.
    fn ensure(&mut self, f: &Formula<G, P>) -> SubId {
        let root = self.interner.intern(f);
        while self.truth.len() < self.interner.len() {
            let id = SubId(self.truth.len() as u32);
            let table = self.compute(id);
            self.truth.push(table);
        }
        root
    }

    /// As [`Evaluator::ensure`], polling `cancel` (and the
    /// `eval.subformula` failpoint) once per subformula — the boundary
    /// at which a table is either fully computed or not started, so a
    /// trip never leaves a partial table behind.
    fn ensure_with(&mut self, f: &Formula<G, P>, cancel: &CancelToken) -> Result<SubId, Cancelled> {
        let root = self.interner.intern(f);
        while self.truth.len() < self.interner.len() {
            match failpoint::check("eval.subformula") {
                None => {}
                Some(Fault::Error | Fault::Cancel) => return Err(Cancelled),
                Some(Fault::Panic) => panic!("failpoint eval.subformula: injected panic"),
            }
            if cancel.is_cancelled() {
                return Err(Cancelled);
            }
            let id = SubId(self.truth.len() as u32);
            let table = self.compute(id);
            self.truth.push(table);
        }
        Ok(root)
    }

    /// Computes the per-time truth table of one subformula. All strictly
    /// smaller ids already have tables (post-order interning).
    fn compute(&mut self, id: SubId) -> Vec<RunSet> {
        let times = self.live.len();
        let n = self.pps.num_runs();
        // Clone the shape (Arc/P clones) to release the interner borrow.
        let shape = self.interner.shape(id).clone();
        match shape {
            Shape::True => self.live.clone(),
            Shape::False => vec![RunSet::empty(n); times],
            Shape::Atom(fact) => (0..times)
                .map(|t| {
                    let time = t as Time;
                    RunSet::from_predicate(n, |r| {
                        self.live[t].contains(r) && fact.holds(self.pps, Point { run: r, time })
                    })
                })
                .collect(),
            Shape::Does(agent, action) => (0..times)
                .map(|t| {
                    let time = t as Time;
                    RunSet::from_predicate(n, |r| {
                        self.live[t].contains(r)
                            && self.pps.does(agent, action, Point { run: r, time })
                    })
                })
                .collect(),
            Shape::Not(x) => (0..times)
                .map(|t| self.live[t].difference(&self.truth[x.index()][t]))
                .collect(),
            Shape::And(x, y) => (0..times)
                .map(|t| self.truth[x.index()][t].intersection(&self.truth[y.index()][t]))
                .collect(),
            Shape::Or(x, y) => (0..times)
                .map(|t| self.truth[x.index()][t].union(&self.truth[y.index()][t]))
                .collect(),
            Shape::Implies(x, y) => (0..times)
                .map(|t| {
                    // (live \ x) ∪ y: material implication at live points.
                    self.live[t]
                        .difference(&self.truth[x.index()][t])
                        .union(&self.truth[y.index()][t])
                })
                .collect(),
            Shape::Knows(agent, x) => {
                self.build_cells_at();
                let cells_at = self.cells_at.as_ref().expect("just built");
                let mut table = Vec::with_capacity(times);
                for (t, cells) in cells_at[agent.index()].iter().enumerate() {
                    let mut out = RunSet::empty(n);
                    // One subset test per cell, broadcast to the whole
                    // cell: K_i ϕ holds at (r, t) iff every point of the
                    // cell of (r, t) satisfies ϕ, i.e. cell.runs ⊆ ϕ_t.
                    for &cid in cells {
                        let runs = self.pps.cell_runs(cid);
                        if runs.is_subset(&self.truth[x.index()][t]) {
                            out.union_with(runs);
                        }
                    }
                    table.push(out);
                }
                table
            }
            Shape::BelievesAtLeast(agent, x, p) => {
                self.build_cells_at();
                let cells_at = self.cells_at.as_ref().expect("just built");
                let mut table = Vec::with_capacity(times);
                for (t, cells) in cells_at[agent.index()].iter().enumerate() {
                    let mut out = RunSet::empty(n);
                    // One conditional measure per cell. `conditional`
                    // accumulates over the intersection in ascending run
                    // order — the exact operand sequence the naive
                    // checker's `belief_in_cell` uses, so the verdict is
                    // bit-equal even for `f64`.
                    for &cid in cells {
                        let runs = self.pps.cell_runs(cid);
                        let belief = self
                            .pps
                            .conditional(&self.truth[x.index()][t], runs)
                            .expect("cells have positive measure");
                        if belief.at_least(&p) {
                            out.union_with(runs);
                        }
                    }
                    table.push(out);
                }
                table
            }
            Shape::Eventually(x) => {
                // Backward: ◇ϕ at (r, t) iff ϕ at t or ◇ϕ at t+1 — runs
                // that end at t have no t+1 point to inherit from, and
                // truth[x][t+1] ⊆ live(t+1) already excludes them.
                let mut table = vec![RunSet::empty(n); times];
                table[times - 1] = self.truth[x.index()][times - 1].clone();
                for t in (0..times - 1).rev() {
                    table[t] = self.truth[x.index()][t].union(&table[t + 1]);
                }
                table
            }
            Shape::Always(x) => {
                // Backward: □ϕ at (r, t) iff ϕ at t and (□ϕ at t+1 or the
                // run ends at t). `live(t) \ live(t+1)` is exactly the
                // runs whose last point is t.
                let mut table = vec![RunSet::empty(n); times];
                table[times - 1] = self.truth[x.index()][times - 1].clone();
                for t in (0..times - 1).rev() {
                    let ending = self.live[t].difference(&self.live[t + 1]);
                    table[t] = self.truth[x.index()][t].intersection(&table[t + 1].union(&ending));
                }
                table
            }
        }
    }

    fn build_cells_at(&mut self) {
        if self.cells_at.is_some() {
            return;
        }
        let n_agents = self.pps.num_agents() as usize;
        let times = self.live.len();
        let mut grouped = vec![vec![Vec::new(); times]; n_agents];
        for (cid, cell) in self.pps.cells() {
            grouped[cell.agent.index()][cell.time as usize].push(cid);
        }
        self.cells_at = Some(grouped);
    }

    /// The event `{r : (T, r, t) |= ϕ}` — bit-identical to
    /// [`ModelChecker::event_at_time`](pak_logic::ModelChecker::event_at_time),
    /// quantifying over the runs alive at `time`. Empty past the horizon.
    pub fn event_at_time(&mut self, f: &Formula<G, P>, time: Time) -> RunSet {
        let id = self.ensure(f);
        match self.truth[id.index()].get(time as usize) {
            Some(set) => set.clone(),
            None => RunSet::empty(self.pps.num_runs()),
        }
    }

    /// The measure `µ_T({r : (T, r, t) |= ϕ})` over live runs, matching
    /// [`ModelChecker::measure_at_time`](pak_logic::ModelChecker::measure_at_time)
    /// bit for bit (same event, same ascending accumulation order).
    pub fn measure_at_time(&mut self, f: &Formula<G, P>, time: Time) -> P {
        let event = self.event_at_time(f, time);
        self.pps.measure(&event)
    }

    /// Three-valued truth at a point: `None` exactly at dead points — the
    /// batched twin of [`Formula::eval_at`].
    pub fn eval_at(&mut self, f: &Formula<G, P>, point: Point) -> Option<bool> {
        if !self.pps.is_live(point) {
            return None;
        }
        let id = self.ensure(f);
        Some(self.truth[id.index()][point.time as usize].contains(point.run))
    }

    /// Boolean truth at a point (`false` at dead points), the batched twin
    /// of [`Formula::holds_at`].
    pub fn holds_at(&mut self, f: &Formula<G, P>, point: Point) -> bool {
        self.eval_at(f, point) == Some(true)
    }

    /// Whether `f` holds at every live point.
    pub fn valid(&mut self, f: &Formula<G, P>) -> bool {
        let id = self.ensure(f);
        self.truth[id.index()]
            .iter()
            .zip(&self.live)
            .all(|(truth, live)| truth == live)
    }

    /// Whether `f` holds at some live point.
    pub fn satisfiable(&mut self, f: &Formula<G, P>) -> bool {
        let id = self.ensure(f);
        self.truth[id.index()].iter().any(|set| !set.is_empty())
    }

    /// The first live point in `(run, time)` order at which `f` fails —
    /// the same point [`ModelChecker::counterexample`](pak_logic::ModelChecker::counterexample)
    /// reports.
    pub fn counterexample(&mut self, f: &Formula<G, P>) -> Option<Point> {
        let id = self.ensure(f);
        let table = &self.truth[id.index()];
        self.pps
            .points()
            .find(|pt| !table[pt.time as usize].contains(pt.run))
    }

    /// All live points satisfying `f`, in `(run, time)` order — matching
    /// [`ModelChecker::satisfying_points`](pak_logic::ModelChecker::satisfying_points).
    pub fn satisfying_points(&mut self, f: &Formula<G, P>) -> Vec<Point> {
        let id = self.ensure(f);
        let table = &self.truth[id.index()];
        self.pps
            .points()
            .filter(|pt| table[pt.time as usize].contains(pt.run))
            .collect()
    }

    /// Evaluates one formula to a [`Verdict`].
    pub fn evaluate(&mut self, f: &Formula<G, P>) -> Verdict {
        let id = self.ensure(f);
        self.verdict_of(id)
    }

    fn verdict_of(&self, id: SubId) -> Verdict {
        let table = &self.truth[id.index()];
        let valid = table.iter().zip(&self.live).all(|(t, l)| t == l);
        let satisfying_points: usize = table.iter().map(RunSet::len).sum();
        let satisfiable = satisfying_points > 0;
        let counterexample = if valid {
            None
        } else {
            self.pps
                .points()
                .find(|pt| !table[pt.time as usize].contains(pt.run))
        };
        Verdict {
            valid,
            satisfiable,
            counterexample,
            satisfying_points,
        }
    }

    /// Evaluates many formulas in one batch. Subformula truth tables are
    /// shared across the whole slice (and with every earlier query on
    /// this evaluator): each distinct subformula is evaluated once, no
    /// matter how many formulas contain it.
    pub fn evaluate_batch(&mut self, formulas: &[Formula<G, P>]) -> Vec<Verdict> {
        formulas.iter().map(|f| self.evaluate(f)).collect()
    }

    /// As [`Evaluator::evaluate_batch`], polling `cancel` at every
    /// subformula boundary.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token trips mid-batch. Tables computed up
    /// to that point stay memoized and valid, so re-running the same
    /// batch (on this evaluator or a fresh one over the same tree)
    /// yields verdicts bit-identical to an uninterrupted call.
    pub fn evaluate_batch_with(
        &mut self,
        formulas: &[Formula<G, P>],
        cancel: &CancelToken,
    ) -> Result<Vec<Verdict>, Cancelled> {
        formulas
            .iter()
            .map(|f| self.ensure_with(f, cancel).map(|id| self.verdict_of(id)))
            .collect()
    }

    /// As [`Evaluator::measure_at_time`], polling `cancel` at every
    /// subformula boundary.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token trips; partial progress stays
    /// memoized exactly as for [`Evaluator::evaluate_batch_with`].
    pub fn measure_at_time_with(
        &mut self,
        f: &Formula<G, P>,
        time: Time,
        cancel: &CancelToken,
    ) -> Result<P, Cancelled> {
        let id = self.ensure_with(f, cancel)?;
        let event = match self.truth[id.index()].get(time as usize) {
            Some(set) => set.clone(),
            None => RunSet::empty(self.pps.num_runs()),
        };
        Ok(self.pps.measure(&event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::ids::{AgentId, RunId};
    use pak_core::pps::PpsBuilder;
    use pak_core::state::SimpleState;
    use pak_logic::ModelChecker;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// Run 0 (µ=½, len 3), run 1 (µ=⅙, len 2), run 2 (µ=⅓, len 1):
    /// uneven lengths exercise the live-run masking in every operator.
    fn uneven_system() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let a = b.initial(SimpleState::new(1, vec![0]), r(1, 2)).unwrap();
        let c = b.initial(SimpleState::new(0, vec![0]), r(1, 6)).unwrap();
        let _d = b.initial(SimpleState::new(2, vec![0]), r(1, 3)).unwrap();
        let a1 = b
            .child(a, SimpleState::new(1, vec![1]), Rational::one(), &[])
            .unwrap();
        b.child(a1, SimpleState::new(0, vec![1]), Rational::one(), &[])
            .unwrap();
        b.child(c, SimpleState::new(0, vec![2]), Rational::one(), &[])
            .unwrap();
        b.build().unwrap()
    }

    fn heads() -> Formula<SimpleState, Rational> {
        Formula::atom(StateFact::new("heads", |g: &SimpleState| g.env == 1))
    }

    #[test]
    fn agrees_with_model_checker_on_uneven_system() {
        let pps = uneven_system();
        let mc = ModelChecker::new(&pps);
        let mut ev = Evaluator::new(&pps);
        let formulas: Vec<Formula<SimpleState, Rational>> = vec![
            Formula::True,
            Formula::False,
            heads(),
            heads().not(),
            heads().implies(Formula::knows(AgentId(0), heads())),
            Formula::knows(AgentId(0), heads().or(heads().not())),
            Formula::believes_at_least(AgentId(0), heads(), r(1, 2)),
            heads().eventually(),
            heads().always(),
            heads().not().eventually().always(),
        ];
        for f in &formulas {
            assert_eq!(ev.valid(f), mc.valid(f), "{f}");
            assert_eq!(ev.satisfiable(f), mc.satisfiable(f), "{f}");
            assert_eq!(ev.counterexample(f), mc.counterexample(f), "{f}");
            assert_eq!(ev.satisfying_points(f), mc.satisfying_points(f), "{f}");
            for t in 0..=pps.horizon() + 1 {
                assert_eq!(ev.event_at_time(f, t), mc.event_at_time(f, t), "{f} @ {t}");
                assert_eq!(
                    ev.measure_at_time(f, t),
                    mc.measure_at_time(f, t),
                    "{f} @ {t}"
                );
            }
            for pt in pps.points().collect::<Vec<_>>() {
                assert_eq!(ev.eval_at(f, pt), f.eval_at(&pps, pt), "{f} at {pt:?}");
            }
            let dead = Point {
                run: RunId(2),
                time: 1,
            };
            assert_eq!(ev.eval_at(f, dead), None);
            assert!(!ev.holds_at(f, dead));
        }
        let verdicts = ev.evaluate_batch(&formulas);
        for (f, v) in formulas.iter().zip(&verdicts) {
            assert_eq!(v.valid, mc.valid(f));
            assert_eq!(v.satisfiable, mc.satisfiable(f));
            assert_eq!(v.counterexample, mc.counterexample(f));
            assert_eq!(v.satisfying_points, mc.satisfying_points(f).len());
        }
    }

    #[test]
    fn batch_shares_subformulas() {
        let pps = uneven_system();
        let mut ev = Evaluator::new(&pps);
        let a = heads();
        let batch: Vec<Formula<SimpleState, Rational>> = vec![
            a.clone().not(),
            a.clone().not().eventually(),
            Formula::knows(AgentId(0), a.clone().not()),
            a.clone().not().implies(a.clone()),
        ];
        ev.evaluate_batch(&batch);
        // a, ¬a, ◇¬a, K_0 ¬a, ¬a → a: five distinct subformulas, not the
        // nine constructor occurrences the batch spells out.
        assert_eq!(ev.num_subformulas(), 5);
    }
}
