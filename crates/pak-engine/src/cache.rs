//! The shared-tree cache: `Arc`-immutable [`Pps`] trees keyed by
//! `(model fingerprint, horizon)`, with LRU + memory-budget eviction.
//!
//! The query service's unit of work is "evaluate formulas against model
//! `M` unfolded to horizon `h`". Unfolding dominates, so [`PpsCache`]
//! keeps finished trees behind `Arc`s for concurrent readers, and
//! [`CachedUnfolder`] fills misses *incrementally*: it retains PR 6's
//! [`Unfolder`] handle, so serving horizon `h` and then `h + 1` grows the
//! existing tree by one level ([`Unfolder::extend_horizon`]) instead of
//! re-unfolding from scratch — the horizon-`h` work seeds `h + 1`.
//!
//! Cache keys come from [`ModelFingerprint`]: a structural digest whose
//! equality must imply identical unfoldings, so two sessions over equal
//! models share trees. DSL adversary variants carry a `variant_tag` in
//! their `TableModel`, so a variant never aliases its base protocol even
//! when their tables coincide.
//!
//! Eviction is least-recently-used, driven by an optional
//! [`CacheBudget`] (entry count and/or a byte budget over
//! [`Pps::memory_footprint`]). Eviction only drops the cache's own
//! `Arc`: readers holding a tree keep it alive — an evicted tree is
//! never invalidated under an in-flight query.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pak_core::cancel::CancelToken;
use pak_core::failpoint::{self, Fault};
use pak_core::hash::{Fingerprint, FxBuildHasher};
use pak_core::ids::Time;
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_protocol::model::{ModelFingerprint, ProtocolModel};
use pak_protocol::unfold::{UnfoldConfig, UnfoldError, Unfolder};

/// Optional bounds driving [`PpsCache`] eviction. The default is
/// unbounded (no eviction), matching the pre-eviction cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Evict down to at most this many cached trees.
    pub max_entries: Option<usize>,
    /// Evict until the summed [`Pps::memory_footprint`] of cached trees
    /// is at most this many bytes. The most recently inserted tree is
    /// never evicted, so a single tree larger than the budget stays
    /// cached alone rather than thrashing.
    pub max_bytes: Option<usize>,
}

/// A point-in-time snapshot of a [`PpsCache`]'s observable behaviour —
/// the service reports one in its shutdown summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// How many [`PpsCache::get`] calls found their tree.
    pub hits: u64,
    /// How many [`PpsCache::get`] calls missed.
    pub misses: u64,
    /// How many trees the budget has evicted so far.
    pub evictions: u64,
    /// Trees currently cached.
    pub entries: usize,
    /// Summed [`Pps::memory_footprint`] of the current entries.
    pub bytes: usize,
}

struct Entry<G: GlobalState, P: Probability> {
    pps: Arc<Pps<G, P>>,
    bytes: usize,
    /// Logical LRU clock value of the last get/insert/best_at_most touch.
    last_use: u64,
}

struct Inner<G: GlobalState, P: Probability> {
    map: HashMap<(Fingerprint, Time), Entry<G, P>, FxBuildHasher>,
    tick: u64,
    total_bytes: usize,
}

/// A concurrent cache of immutable unfolded trees.
///
/// Lookups clone an `Arc` out under a brief mutex; the trees themselves
/// are never locked (everything in a [`Pps`] is `Send + Sync`), so any
/// number of evaluators can read one cached tree at once. Hit/miss/
/// eviction counters ([`PpsCache::stats`]) make cache behaviour
/// observable in tests and services.
///
/// [`PpsCache::new`] is unbounded; [`PpsCache::with_budget`] enables
/// LRU eviction against a [`CacheBudget`].
///
/// # Examples
///
/// ```
/// use pak_engine::{CachedUnfolder, PpsCache};
/// use pak_protocol::model::CoinModel;
/// use pak_protocol::unfold::UnfoldConfig;
/// use pak_num::Rational;
///
/// let cache = PpsCache::new();
/// let model = CoinModel { heads_num: 1, heads_den: 2 };
/// let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())?;
/// let t1 = session.pps_at(&cache, 1)?;          // miss: unfolds
/// let t1_again = session.pps_at(&cache, 1)?;    // hit: same Arc
/// assert!(std::sync::Arc::ptr_eq(&t1, &t1_again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), pak_protocol::unfold::UnfoldError>(())
/// ```
pub struct PpsCache<G: GlobalState, P: Probability> {
    inner: Mutex<Inner<G, P>>,
    budget: CacheBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<G: GlobalState, P: Probability> Default for PpsCache<G, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: GlobalState, P: Probability> PpsCache<G, P> {
    /// An empty, unbounded cache (nothing is ever evicted).
    #[must_use]
    pub fn new() -> Self {
        Self::with_budget(CacheBudget::default())
    }

    /// An empty cache that evicts least-recently-used trees whenever
    /// `budget` is exceeded after an insert.
    #[must_use]
    pub fn with_budget(budget: CacheBudget) -> Self {
        PpsCache {
            inner: Mutex::new(Inner {
                map: HashMap::default(),
                tick: 0,
                total_bytes: 0,
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The budget this cache evicts against.
    #[must_use]
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Looks up the tree for `(fingerprint, horizon)`, counting a hit or
    /// miss. A hit refreshes the entry's LRU position.
    #[must_use]
    pub fn get(&self, fingerprint: Fingerprint, horizon: Time) -> Option<Arc<Pps<G, P>>> {
        let mut inner = self.inner.lock().expect("pps cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&(fingerprint, horizon)).map(|entry| {
            entry.last_use = tick;
            Arc::clone(&entry.pps)
        });
        drop(inner);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a tree under `(fingerprint, horizon)`, replacing any
    /// previous entry, then evicts least-recently-used entries (never
    /// the one just inserted) until the budget is respected again.
    ///
    /// Carries the `cache.insert` failpoint: an injected `Error` or
    /// `Cancel` fault silently skips the insert — the degraded mode a
    /// service sheds load into — and `Panic` panics.
    pub fn insert(&self, fingerprint: Fingerprint, horizon: Time, pps: Arc<Pps<G, P>>) {
        match failpoint::check("cache.insert") {
            None => {}
            Some(Fault::Error | Fault::Cancel) => return,
            Some(Fault::Panic) => panic!("failpoint cache.insert: injected panic"),
        }
        let bytes = pps.memory_footprint();
        let key = (fingerprint, horizon);
        let mut inner = self.inner.lock().expect("pps cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                pps,
                bytes,
                last_use: tick,
            },
        ) {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        let evicted = self.evict_over_budget(&mut inner, key);
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops LRU entries (excluding `protect`) until the budget holds.
    /// Returns how many entries were evicted.
    fn evict_over_budget(&self, inner: &mut Inner<G, P>, protect: (Fingerprint, Time)) -> u64 {
        let over = |inner: &Inner<G, P>| {
            self.budget.max_entries.is_some_and(|m| inner.map.len() > m)
                || self.budget.max_bytes.is_some_and(|m| inner.total_bytes > m)
        };
        let mut evicted = 0;
        while over(inner) {
            let victim = inner
                .map
                .iter()
                .filter(|(key, _)| **key != protect)
                .min_by_key(|(_, entry)| entry.last_use)
                .map(|(key, _)| *key);
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.total_bytes -= entry.bytes;
                evicted += 1;
            }
        }
        evicted
    }

    /// The deepest cached horizon `≤ horizon` for this fingerprint, with
    /// its tree — what an extension-based fill uses as a starting point
    /// when the exact horizon misses. Refreshes the returned entry's LRU
    /// position but does not touch the hit/miss counters.
    #[must_use]
    pub fn best_at_most(
        &self,
        fingerprint: Fingerprint,
        horizon: Time,
    ) -> Option<(Time, Arc<Pps<G, P>>)> {
        let mut inner = self.inner.lock().expect("pps cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let best = inner
            .map
            .iter()
            .filter(|((fp, h), _)| *fp == fingerprint && *h <= horizon)
            .max_by_key(|((_, h), _)| *h)
            .map(|((_, h), _)| (fingerprint, *h));
        let (fp, h) = best?;
        let entry = inner.map.get_mut(&(fp, h))?;
        entry.last_use = tick;
        Some((h, Arc::clone(&entry.pps)))
    }

    /// The number of cached trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("pps cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached tree (readers holding `Arc`s are unaffected).
    /// Counters keep accumulating across a clear.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("pps cache poisoned");
        inner.map.clear();
        inner.total_bytes = 0;
    }

    /// How many [`PpsCache::get`] calls found their tree.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many [`PpsCache::get`] calls missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many trees the budget has evicted so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Summed [`Pps::memory_footprint`] of the current entries.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("pps cache poisoned").total_bytes
    }

    /// A consistent snapshot of the cache's counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("pps cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.total_bytes,
        }
    }
}

/// A cache-filling unfold session for one model: retains an [`Unfolder`]
/// handle so successive horizons are served by *growing* the previous
/// tree, not rebuilding it.
///
/// The handle is the seed: after `pps_at(cache, h)`, the internal tree
/// stands at horizon `h`, so `pps_at(cache, h + 1)` costs one
/// [`Unfolder::extend_horizon`] level. Snapshots handed to the cache are
/// `Arc`-wrapped clones, immutable by construction — later growth of the
/// handle never mutates a served tree. If a *shallower* horizon than the
/// handle's is requested on a cache miss, it is served by a capped
/// from-scratch unfold (the handle cannot shrink); the level-order
/// emission contract guarantees both routes produce bit-identical trees.
pub struct CachedUnfolder<'m, M: ProtocolModel<P>, P: Probability> {
    unfolder: Unfolder<'m, M, P>,
    config: UnfoldConfig,
    model: &'m M,
    fingerprint: Fingerprint,
}

impl<'m, M, P> CachedUnfolder<'m, M, P>
where
    M: ProtocolModel<P> + ModelFingerprint,
    P: Probability,
{
    /// Opens a session on `model`. `config` governs every unfold the
    /// session performs (`max_nodes`, `max_depth`); its `horizon` field is
    /// ignored — horizons come per [`CachedUnfolder::pps_at`] call.
    ///
    /// # Errors
    ///
    /// See [`UnfoldError`] (the initial-states level is built here).
    pub fn new(model: &'m M, config: UnfoldConfig) -> Result<Self, UnfoldError> {
        let fingerprint = model.fingerprint();
        let start = UnfoldConfig {
            horizon: Some(0),
            ..config.clone()
        };
        Ok(CachedUnfolder {
            unfolder: Unfolder::new(model, start)?,
            config,
            model,
            fingerprint,
        })
    }

    /// The model's cache key.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The horizon the retained tree currently stands at.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.unfolder.horizon()
    }

    /// The tree for `horizon`: a cache hit returns the shared `Arc`; a
    /// miss grows the retained handle level by level up to `horizon`
    /// (stopping early if every path terminates first), snapshots the
    /// result into the cache, and returns it.
    ///
    /// # Errors
    ///
    /// See [`UnfoldError`] — size caps and model mishaps surface here; a
    /// failed growth step leaves the handle valid at its previous horizon
    /// (the [`Unfolder`] rollback contract).
    pub fn pps_at(
        &mut self,
        cache: &PpsCache<M::Global, P>,
        horizon: Time,
    ) -> Result<Arc<Pps<M::Global, P>>, UnfoldError> {
        self.pps_at_with(cache, horizon, &CancelToken::new())
    }

    /// As [`CachedUnfolder::pps_at`], polling `cancel` at every level
    /// boundary (and per frontier node) of the incremental growth path.
    ///
    /// The shallower-than-handle path (a capped from-scratch unfold of
    /// an already-grown prefix) checks the token once up front but is
    /// not interruptible mid-unfold; it rebuilds a tree the handle has
    /// already paid for, so its latency is bounded by work the caller
    /// has previously accepted.
    ///
    /// # Errors
    ///
    /// As [`CachedUnfolder::pps_at`], plus [`UnfoldError::Cancelled`]
    /// when the token trips. On cancellation the handle stays valid at
    /// the last fully committed horizon, and that prefix is *kept*: a
    /// retry resumes from it rather than starting over.
    pub fn pps_at_with(
        &mut self,
        cache: &PpsCache<M::Global, P>,
        horizon: Time,
        cancel: &CancelToken,
    ) -> Result<Arc<Pps<M::Global, P>>, UnfoldError> {
        if let Some(hit) = cache.get(self.fingerprint, horizon) {
            return Ok(hit);
        }
        let snapshot = if self.unfolder.horizon() > horizon {
            if cancel.is_cancelled() {
                return Err(UnfoldError::Cancelled);
            }
            // The handle has already grown past this horizon; a capped
            // from-scratch unfold serves the shallower tree.
            let capped = UnfoldConfig {
                horizon: Some(horizon),
                ..self.config.clone()
            };
            Arc::new(Unfolder::new(self.model, capped)?.into_pps())
        } else {
            while self.unfolder.horizon() < horizon && self.unfolder.extend_horizon_with(cancel)? {}
            Arc::new(self.unfolder.pps().clone())
        };
        cache.insert(self.fingerprint, horizon, Arc::clone(&snapshot));
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::ids::AgentId;
    use pak_num::Rational;
    use pak_protocol::generator::{random_model, RandomModelConfig};
    use pak_protocol::model::CoinModel;
    use pak_protocol::unfold::unfold_with;

    fn cfg(horizon: u32) -> RandomModelConfig {
        RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        }
    }

    #[test]
    fn hits_share_and_misses_grow_incrementally() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(19, &cfg(5));
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        let t3 = session.pps_at(&cache, 3).expect("unfold to 3");
        assert_eq!(session.horizon(), 3);
        // Growing to 4 extends the same handle; the cached 3-tree is a
        // distinct immutable snapshot.
        let t4 = session.pps_at(&cache, 4).expect("extend to 4");
        assert_eq!(session.horizon(), 4);
        assert_eq!(t3.horizon(), 3);
        assert_eq!(t4.horizon(), 4);
        let t3_again = session.pps_at(&cache, 3).expect("hit");
        assert!(Arc::ptr_eq(&t3, &t3_again));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn grown_snapshots_match_from_scratch_unfolds() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(23, &cfg(4));
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        for h in [2u32, 4, 1] {
            let grown = session.pps_at(&cache, h).expect("serve");
            let scratch = unfold_with::<_, Rational>(
                &model,
                &UnfoldConfig {
                    horizon: Some(h),
                    ..UnfoldConfig::default()
                },
            )
            .expect("scratch unfold");
            assert_eq!(grown.num_runs(), scratch.num_runs());
            assert_eq!(grown.num_nodes(), scratch.num_nodes());
            for run in grown.run_ids() {
                assert_eq!(grown.run_probability(run), scratch.run_probability(run));
                assert_eq!(grown.run_len(run), scratch.run_len(run));
            }
            assert_eq!(grown.num_cells(), scratch.num_cells());
        }
    }

    #[test]
    fn requests_past_exhaustion_reuse_the_complete_tree() {
        let cache = PpsCache::new();
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        // The coin model terminates at time 1; deeper requests stop early.
        let t9 = session.pps_at(&cache, 9).expect("serve");
        assert_eq!(t9.horizon(), 1);
        assert!(t9.is_proper(AgentId(0), pak_protocol::model::COIN_ACT));
    }

    #[test]
    fn distinct_models_never_share_trees() {
        let cache = PpsCache::new();
        let a = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let b = CoinModel {
            heads_num: 1,
            heads_den: 3,
        };
        let mut sa = CachedUnfolder::<_, Rational>::new(&a, UnfoldConfig::default()).unwrap();
        let mut sb = CachedUnfolder::<_, Rational>::new(&b, UnfoldConfig::default()).unwrap();
        assert_ne!(sa.fingerprint(), sb.fingerprint());
        let ta = sa.pps_at(&cache, 1).unwrap();
        let tb = sb.pps_at(&cache, 1).unwrap();
        assert!(!Arc::ptr_eq(&ta, &tb));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn best_at_most_finds_the_deepest_prefix() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(7, &cfg(5));
        let mut session =
            CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default()).unwrap();
        session.pps_at(&cache, 1).unwrap();
        session.pps_at(&cache, 3).unwrap();
        let fp = session.fingerprint();
        assert_eq!(cache.best_at_most(fp, 4).map(|(h, _)| h), Some(3));
        assert_eq!(cache.best_at_most(fp, 2).map(|(h, _)| h), Some(1));
        assert_eq!(cache.best_at_most(fp, 0).map(|(h, _)| h), None);
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let cache = PpsCache::with_budget(CacheBudget {
            max_entries: Some(2),
            max_bytes: None,
        });
        let model = random_model::<Rational>(31, &cfg(6));
        let mut session =
            CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default()).unwrap();
        let fp = session.fingerprint();
        session.pps_at(&cache, 1).unwrap();
        session.pps_at(&cache, 2).unwrap();
        // Touch horizon 1 so horizon 2 is the LRU victim.
        assert!(cache.get(fp, 1).is_some());
        session.pps_at(&cache, 3).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let remaining: Vec<bool> = (1..=3).map(|h| cache.get(fp, h).is_some()).collect();
        assert_eq!(remaining, [true, false, true]);
    }

    #[test]
    fn byte_budget_evicts_but_never_invalidates_readers() {
        // A 1-byte budget forces every insert over budget; the newest
        // entry is protected, so the cache holds exactly one tree.
        let cache = PpsCache::with_budget(CacheBudget {
            max_entries: None,
            max_bytes: Some(1),
        });
        let model = random_model::<Rational>(47, &cfg(6));
        let mut session =
            CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default()).unwrap();
        let t2 = session.pps_at(&cache, 2).unwrap();
        let t3 = session.pps_at(&cache, 3).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        // The evicted horizon-2 tree is still fully usable through the
        // Arc handed out before eviction.
        assert_eq!(t2.horizon(), 2);
        assert!(t2.num_runs() > 0);
        assert_eq!(t2.measure(&t2.live_runs_at(0)), Rational::one());
        assert!(t3.memory_footprint() > 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes, t3.memory_footprint());
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(11, &cfg(4));
        let mut session =
            CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default()).unwrap();
        session.pps_at(&cache, 2).unwrap();
        session.pps_at(&cache, 2).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, cache.hits());
        assert_eq!(stats.misses, cache.misses());
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }
}
