//! The shared-tree cache: `Arc`-immutable [`Pps`] trees keyed by
//! `(model fingerprint, horizon)`.
//!
//! The query service's unit of work is "evaluate formulas against model
//! `M` unfolded to horizon `h`". Unfolding dominates, so [`PpsCache`]
//! keeps finished trees behind `Arc`s for concurrent readers, and
//! [`CachedUnfolder`] fills misses *incrementally*: it retains PR 6's
//! [`Unfolder`] handle, so serving horizon `h` and then `h + 1` grows the
//! existing tree by one level ([`Unfolder::extend_horizon`]) instead of
//! re-unfolding from scratch — the horizon-`h` work seeds `h + 1`.
//!
//! Cache keys come from [`ModelFingerprint`]: a structural digest whose
//! equality must imply identical unfoldings, so two sessions over equal
//! models share trees.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pak_core::hash::{Fingerprint, FxBuildHasher};
use pak_core::ids::Time;
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_protocol::model::{ModelFingerprint, ProtocolModel};
use pak_protocol::unfold::{UnfoldConfig, UnfoldError, Unfolder};

/// A concurrent cache of immutable unfolded trees.
///
/// Lookups clone an `Arc` out under a brief mutex; the trees themselves
/// are never locked (everything in a [`Pps`] is `Send + Sync`), so any
/// number of evaluators can read one cached tree at once. Hit/miss
/// counters make cache behaviour observable in tests and services.
///
/// Eviction is the caller's policy for now: [`PpsCache::len`] and
/// [`PpsCache::clear`] are the hooks, an LRU layer can wrap this type
/// later without touching the keying contract.
///
/// # Examples
///
/// ```
/// use pak_engine::{CachedUnfolder, PpsCache};
/// use pak_protocol::model::CoinModel;
/// use pak_protocol::unfold::UnfoldConfig;
/// use pak_num::Rational;
///
/// let cache = PpsCache::new();
/// let model = CoinModel { heads_num: 1, heads_den: 2 };
/// let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())?;
/// let t1 = session.pps_at(&cache, 1)?;          // miss: unfolds
/// let t1_again = session.pps_at(&cache, 1)?;    // hit: same Arc
/// assert!(std::sync::Arc::ptr_eq(&t1, &t1_again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), pak_protocol::unfold::UnfoldError>(())
/// ```
pub struct PpsCache<G: GlobalState, P: Probability> {
    map: Mutex<TreeMap<G, P>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The cache's index: `(model fingerprint, horizon) → shared tree`.
type TreeMap<G, P> = HashMap<(Fingerprint, Time), Arc<Pps<G, P>>, FxBuildHasher>;

impl<G: GlobalState, P: Probability> Default for PpsCache<G, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: GlobalState, P: Probability> PpsCache<G, P> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PpsCache {
            map: Mutex::new(HashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up the tree for `(fingerprint, horizon)`, counting a hit or
    /// miss.
    #[must_use]
    pub fn get(&self, fingerprint: Fingerprint, horizon: Time) -> Option<Arc<Pps<G, P>>> {
        let found = self
            .map
            .lock()
            .expect("pps cache poisoned")
            .get(&(fingerprint, horizon))
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a tree under `(fingerprint, horizon)`, replacing any
    /// previous entry.
    pub fn insert(&self, fingerprint: Fingerprint, horizon: Time, pps: Arc<Pps<G, P>>) {
        self.map
            .lock()
            .expect("pps cache poisoned")
            .insert((fingerprint, horizon), pps);
    }

    /// The deepest cached horizon `≤ horizon` for this fingerprint, with
    /// its tree — what an extension-based fill uses as a starting point
    /// when the exact horizon misses. Does not touch the hit/miss
    /// counters.
    #[must_use]
    pub fn best_at_most(
        &self,
        fingerprint: Fingerprint,
        horizon: Time,
    ) -> Option<(Time, Arc<Pps<G, P>>)> {
        let map = self.map.lock().expect("pps cache poisoned");
        map.iter()
            .filter(|((fp, h), _)| *fp == fingerprint && *h <= horizon)
            .max_by_key(|((_, h), _)| *h)
            .map(|((_, h), pps)| (*h, Arc::clone(pps)))
    }

    /// The number of cached trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("pps cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached tree (readers holding `Arc`s are unaffected).
    pub fn clear(&self) {
        self.map.lock().expect("pps cache poisoned").clear();
    }

    /// How many [`PpsCache::get`] calls found their tree.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many [`PpsCache::get`] calls missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A cache-filling unfold session for one model: retains an [`Unfolder`]
/// handle so successive horizons are served by *growing* the previous
/// tree, not rebuilding it.
///
/// The handle is the seed: after `pps_at(cache, h)`, the internal tree
/// stands at horizon `h`, so `pps_at(cache, h + 1)` costs one
/// [`Unfolder::extend_horizon`] level. Snapshots handed to the cache are
/// `Arc`-wrapped clones, immutable by construction — later growth of the
/// handle never mutates a served tree. If a *shallower* horizon than the
/// handle's is requested on a cache miss, it is served by a capped
/// from-scratch unfold (the handle cannot shrink); the level-order
/// emission contract guarantees both routes produce bit-identical trees.
pub struct CachedUnfolder<'m, M: ProtocolModel<P>, P: Probability> {
    unfolder: Unfolder<'m, M, P>,
    config: UnfoldConfig,
    model: &'m M,
    fingerprint: Fingerprint,
}

impl<'m, M, P> CachedUnfolder<'m, M, P>
where
    M: ProtocolModel<P> + ModelFingerprint,
    P: Probability,
{
    /// Opens a session on `model`. `config` governs every unfold the
    /// session performs (`max_nodes`, `max_depth`); its `horizon` field is
    /// ignored — horizons come per [`CachedUnfolder::pps_at`] call.
    ///
    /// # Errors
    ///
    /// See [`UnfoldError`] (the initial-states level is built here).
    pub fn new(model: &'m M, config: UnfoldConfig) -> Result<Self, UnfoldError> {
        let fingerprint = model.fingerprint();
        let start = UnfoldConfig {
            horizon: Some(0),
            ..config.clone()
        };
        Ok(CachedUnfolder {
            unfolder: Unfolder::new(model, start)?,
            config,
            model,
            fingerprint,
        })
    }

    /// The model's cache key.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The horizon the retained tree currently stands at.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.unfolder.horizon()
    }

    /// The tree for `horizon`: a cache hit returns the shared `Arc`; a
    /// miss grows the retained handle level by level up to `horizon`
    /// (stopping early if every path terminates first), snapshots the
    /// result into the cache, and returns it.
    ///
    /// # Errors
    ///
    /// See [`UnfoldError`] — size caps and model mishaps surface here; a
    /// failed growth step leaves the handle valid at its previous horizon
    /// (the [`Unfolder`] rollback contract).
    pub fn pps_at(
        &mut self,
        cache: &PpsCache<M::Global, P>,
        horizon: Time,
    ) -> Result<Arc<Pps<M::Global, P>>, UnfoldError> {
        if let Some(hit) = cache.get(self.fingerprint, horizon) {
            return Ok(hit);
        }
        let snapshot = if self.unfolder.horizon() > horizon {
            // The handle has already grown past this horizon; a capped
            // from-scratch unfold serves the shallower tree.
            let capped = UnfoldConfig {
                horizon: Some(horizon),
                ..self.config.clone()
            };
            Arc::new(Unfolder::new(self.model, capped)?.into_pps())
        } else {
            while self.unfolder.horizon() < horizon && self.unfolder.extend_horizon()? {}
            Arc::new(self.unfolder.pps().clone())
        };
        cache.insert(self.fingerprint, horizon, Arc::clone(&snapshot));
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::ids::AgentId;
    use pak_num::Rational;
    use pak_protocol::generator::{random_model, RandomModelConfig};
    use pak_protocol::model::CoinModel;
    use pak_protocol::unfold::unfold_with;

    fn cfg(horizon: u32) -> RandomModelConfig {
        RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        }
    }

    #[test]
    fn hits_share_and_misses_grow_incrementally() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(19, &cfg(5));
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        let t3 = session.pps_at(&cache, 3).expect("unfold to 3");
        assert_eq!(session.horizon(), 3);
        // Growing to 4 extends the same handle; the cached 3-tree is a
        // distinct immutable snapshot.
        let t4 = session.pps_at(&cache, 4).expect("extend to 4");
        assert_eq!(session.horizon(), 4);
        assert_eq!(t3.horizon(), 3);
        assert_eq!(t4.horizon(), 4);
        let t3_again = session.pps_at(&cache, 3).expect("hit");
        assert!(Arc::ptr_eq(&t3, &t3_again));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn grown_snapshots_match_from_scratch_unfolds() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(23, &cfg(4));
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        for h in [2u32, 4, 1] {
            let grown = session.pps_at(&cache, h).expect("serve");
            let scratch = unfold_with::<_, Rational>(
                &model,
                &UnfoldConfig {
                    horizon: Some(h),
                    ..UnfoldConfig::default()
                },
            )
            .expect("scratch unfold");
            assert_eq!(grown.num_runs(), scratch.num_runs());
            assert_eq!(grown.num_nodes(), scratch.num_nodes());
            for run in grown.run_ids() {
                assert_eq!(grown.run_probability(run), scratch.run_probability(run));
                assert_eq!(grown.run_len(run), scratch.run_len(run));
            }
            assert_eq!(grown.num_cells(), scratch.num_cells());
        }
    }

    #[test]
    fn requests_past_exhaustion_reuse_the_complete_tree() {
        let cache = PpsCache::new();
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())
            .expect("session opens");
        // The coin model terminates at time 1; deeper requests stop early.
        let t9 = session.pps_at(&cache, 9).expect("serve");
        assert_eq!(t9.horizon(), 1);
        assert!(t9.is_proper(AgentId(0), pak_protocol::model::COIN_ACT));
    }

    #[test]
    fn distinct_models_never_share_trees() {
        let cache = PpsCache::new();
        let a = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let b = CoinModel {
            heads_num: 1,
            heads_den: 3,
        };
        let mut sa = CachedUnfolder::<_, Rational>::new(&a, UnfoldConfig::default()).unwrap();
        let mut sb = CachedUnfolder::<_, Rational>::new(&b, UnfoldConfig::default()).unwrap();
        assert_ne!(sa.fingerprint(), sb.fingerprint());
        let ta = sa.pps_at(&cache, 1).unwrap();
        let tb = sb.pps_at(&cache, 1).unwrap();
        assert!(!Arc::ptr_eq(&ta, &tb));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn best_at_most_finds_the_deepest_prefix() {
        let cache = PpsCache::new();
        let model = random_model::<Rational>(7, &cfg(5));
        let mut session =
            CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default()).unwrap();
        session.pps_at(&cache, 1).unwrap();
        session.pps_at(&cache, 3).unwrap();
        let fp = session.fingerprint();
        assert_eq!(cache.best_at_most(fp, 4).map(|(h, _)| h), Some(3));
        assert_eq!(cache.best_at_most(fp, 2).map(|(h, _)| h), Some(1));
        assert_eq!(cache.best_at_most(fp, 0).map(|(h, _)| h), None);
    }
}
