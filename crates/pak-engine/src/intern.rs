//! Subformula interning (structural hashing).
//!
//! Batched evaluation computes one truth bitset per *distinct* subformula
//! per time, so the first step of every query is folding the formula tree
//! into a [`FormulaInterner`]: a post-order arena of [`Shape`]s — one
//! [`Formula`] constructor each, with children replaced by [`SubId`]s —
//! deduplicated by structural hash. Interning `K_0 (a ∧ b)` and later
//! `¬(a ∧ b)` yields arenas sharing the `a`, `b` and `a ∧ b` entries, so
//! their bitsets are computed once for both queries.
//!
//! Two non-obvious identification rules:
//!
//! * **Atoms are identified by `Arc` identity**, not by comparing
//!   predicates (closures have no equality). Cloned formulas share their
//!   atom `Arc`s, so the common case — one formula referenced from many
//!   places, or built from shared atom values — dedupes fully; two
//!   *independently constructed* but extensionally equal atoms are kept
//!   distinct, which costs sharing, never correctness.
//! * **Belief thresholds are compared, not hashed** ([`Probability`] has
//!   no `Hash`): `B_i^{≥p} ϕ` hashes on `(i, ϕ)` only and confirms `p`
//!   by `PartialEq` within the bucket.

use std::collections::HashMap;
use std::sync::Arc;

use pak_core::fact::Fact;
use pak_core::hash::{FxBuildHasher, FxHasher};
use pak_core::ids::{ActionId, AgentId};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_logic::Formula;

/// Index of an interned subformula in a [`FormulaInterner`].
///
/// Ids are assigned post-order: every child's id is strictly smaller than
/// its parent's, so iterating ids in ascending order visits children
/// before parents — the evaluation order the batched evaluator relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u32);

impl SubId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned subformula: a [`Formula`] constructor with children
/// replaced by [`SubId`]s into the same interner.
#[derive(Clone)]
pub enum Shape<G: GlobalState, P: Probability> {
    /// `⊤`.
    True,
    /// `⊥`.
    False,
    /// An atomic fact, shared with the interned formula.
    Atom(Arc<dyn Fact<G, P> + Send + Sync>),
    /// `¬ϕ`.
    Not(SubId),
    /// `ϕ ∧ ψ`.
    And(SubId, SubId),
    /// `ϕ ∨ ψ`.
    Or(SubId, SubId),
    /// `ϕ → ψ`.
    Implies(SubId, SubId),
    /// `does_i(α)`.
    Does(AgentId, ActionId),
    /// `K_i ϕ`.
    Knows(AgentId, SubId),
    /// `B_i^{≥p} ϕ`.
    BelievesAtLeast(AgentId, SubId, P),
    /// `◇ϕ`.
    Eventually(SubId),
    /// `□ϕ`.
    Always(SubId),
}

impl<G: GlobalState, P: Probability> Shape<G, P> {
    /// The structural hash: discriminant plus operands, with atoms
    /// identified by `Arc` data-pointer address and belief thresholds
    /// *excluded* (no `P: Hash`; they are confirmed by `PartialEq` in the
    /// bucket instead).
    fn hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        match self {
            Shape::True => h.write_u8(0),
            Shape::False => h.write_u8(1),
            Shape::Atom(a) => {
                h.write_u8(2);
                h.write_usize(atom_addr(a));
            }
            Shape::Not(x) => {
                h.write_u8(3);
                h.write_u32(x.0);
            }
            Shape::And(a, b) => {
                h.write_u8(4);
                h.write_u32(a.0);
                h.write_u32(b.0);
            }
            Shape::Or(a, b) => {
                h.write_u8(5);
                h.write_u32(a.0);
                h.write_u32(b.0);
            }
            Shape::Implies(a, b) => {
                h.write_u8(6);
                h.write_u32(a.0);
                h.write_u32(b.0);
            }
            Shape::Does(i, act) => {
                h.write_u8(7);
                h.write_u32(i.0);
                h.write_u32(act.0);
            }
            Shape::Knows(i, x) => {
                h.write_u8(8);
                h.write_u32(i.0);
                h.write_u32(x.0);
            }
            Shape::BelievesAtLeast(i, x, _p) => {
                h.write_u8(9);
                h.write_u32(i.0);
                h.write_u32(x.0);
            }
            Shape::Eventually(x) => {
                h.write_u8(10);
                h.write_u32(x.0);
            }
            Shape::Always(x) => {
                h.write_u8(11);
                h.write_u32(x.0);
            }
        }
        h.finish()
    }

    fn same_as(&self, other: &Self) -> bool {
        match (self, other) {
            (Shape::True, Shape::True) | (Shape::False, Shape::False) => true,
            (Shape::Atom(a), Shape::Atom(b)) => atom_addr(a) == atom_addr(b),
            (Shape::Not(a), Shape::Not(b))
            | (Shape::Eventually(a), Shape::Eventually(b))
            | (Shape::Always(a), Shape::Always(b)) => a == b,
            (Shape::And(a1, b1), Shape::And(a2, b2))
            | (Shape::Or(a1, b1), Shape::Or(a2, b2))
            | (Shape::Implies(a1, b1), Shape::Implies(a2, b2)) => a1 == a2 && b1 == b2,
            (Shape::Does(i1, a1), Shape::Does(i2, a2)) => i1 == i2 && a1 == a2,
            (Shape::Knows(i1, x1), Shape::Knows(i2, x2)) => i1 == i2 && x1 == x2,
            (Shape::BelievesAtLeast(i1, x1, p1), Shape::BelievesAtLeast(i2, x2, p2)) => {
                i1 == i2 && x1 == x2 && p1 == p2
            }
            _ => false,
        }
    }
}

/// The thin data-pointer address of an atom's `Arc` allocation: the
/// identity under which atoms are deduplicated.
fn atom_addr<G: GlobalState, P: Probability>(a: &Arc<dyn Fact<G, P> + Send + Sync>) -> usize {
    Arc::as_ptr(a).cast::<()>() as usize
}

/// A deduplicating arena of [`Shape`]s.
///
/// # Examples
///
/// ```
/// use pak_engine::intern::FormulaInterner;
/// use pak_logic::Formula;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let a: Formula<SimpleState, Rational> =
///     Formula::atom(StateFact::new("a", |g: &SimpleState| g.env == 1));
/// let f = a.clone().and(a.clone().not());
/// let g = Formula::knows(AgentId(0), a.clone().and(a.clone().not()));
/// let mut interner = FormulaInterner::new();
/// let fid = interner.intern(&f);
/// let gid = interner.intern(&g);
/// // `g` reuses every subformula of `f` — only `K_0 …` itself is new —
/// // because the formulas share their atom `Arc`s.
/// assert_eq!(gid.index(), fid.index() + 1);
/// assert_eq!(interner.len(), 4); // a, ¬a, a ∧ ¬a, K_0 (a ∧ ¬a)
/// ```
pub struct FormulaInterner<G: GlobalState, P: Probability> {
    shapes: Vec<Shape<G, P>>,
    /// Structural hash → candidate ids (usually a singleton; collisions
    /// and equal-hash belief variants share a bucket).
    buckets: HashMap<u64, Vec<u32>, FxBuildHasher>,
}

impl<G: GlobalState, P: Probability> Default for FormulaInterner<G, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: GlobalState, P: Probability> FormulaInterner<G, P> {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        FormulaInterner {
            shapes: Vec::new(),
            buckets: HashMap::default(),
        }
    }

    /// The number of distinct subformulas interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The shape stored under an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    #[must_use]
    pub fn shape(&self, id: SubId) -> &Shape<G, P> {
        &self.shapes[id.index()]
    }

    /// Interns a formula and all its subformulas, returning the root's id.
    ///
    /// Children are interned before parents, so the returned id is the
    /// largest in the formula's tree and ascending id order is bottom-up
    /// across everything ever interned here.
    pub fn intern(&mut self, f: &Formula<G, P>) -> SubId {
        let shape = match f {
            Formula::True => Shape::True,
            Formula::False => Shape::False,
            Formula::Atom(a) => Shape::Atom(Arc::clone(a)),
            Formula::Not(x) => Shape::Not(self.intern(x)),
            Formula::And(a, b) => Shape::And(self.intern(a), self.intern(b)),
            Formula::Or(a, b) => Shape::Or(self.intern(a), self.intern(b)),
            Formula::Implies(a, b) => Shape::Implies(self.intern(a), self.intern(b)),
            Formula::Does(i, act) => Shape::Does(*i, *act),
            Formula::Knows(i, x) => Shape::Knows(*i, self.intern(x)),
            Formula::BelievesAtLeast(i, x, p) => {
                Shape::BelievesAtLeast(*i, self.intern(x), p.clone())
            }
            Formula::Eventually(x) => Shape::Eventually(self.intern(x)),
            Formula::Always(x) => Shape::Always(self.intern(x)),
        };
        let hash = shape.hash();
        if let Some(candidates) = self.buckets.get(&hash) {
            for &c in candidates {
                if self.shapes[c as usize].same_as(&shape) {
                    return SubId(c);
                }
            }
        }
        let id = u32::try_from(self.shapes.len()).expect("more than u32::MAX subformulas");
        self.shapes.push(shape);
        self.buckets.entry(hash).or_default().push(id);
        SubId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::ids::AgentId;
    use pak_core::state::SimpleState;
    use pak_num::Rational;

    fn atom(label: &str) -> Formula<SimpleState, Rational> {
        Formula::atom(StateFact::new(label.to_string(), |g: &SimpleState| {
            g.env == 1
        }))
    }

    #[test]
    fn shared_arcs_dedupe_and_ids_are_postorder() {
        let a = atom("a");
        let f = a.clone().and(a.clone());
        let mut i = FormulaInterner::<SimpleState, Rational>::new();
        let root = i.intern(&f);
        // a, a ∧ a — the two conjunct occurrences are one entry.
        assert_eq!(i.len(), 2);
        assert_eq!(root, SubId(1));
        // Re-interning anything already seen is a pure lookup.
        assert_eq!(i.intern(&a), SubId(0));
        assert_eq!(i.intern(&f), root);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn distinct_atom_allocations_stay_distinct() {
        let mut i = FormulaInterner::<SimpleState, Rational>::new();
        let a1 = i.intern(&atom("a"));
        let a2 = i.intern(&atom("a"));
        assert_ne!(a1, a2, "extensionally equal atoms are not identified");
    }

    #[test]
    fn belief_thresholds_discriminate_without_hashing() {
        let a = atom("a");
        let mut i = FormulaInterner::<SimpleState, Rational>::new();
        let half = i.intern(&Formula::believes_at_least(
            AgentId(0),
            a.clone(),
            Rational::from_ratio(1, 2),
        ));
        let third = i.intern(&Formula::believes_at_least(
            AgentId(0),
            a.clone(),
            Rational::from_ratio(1, 3),
        ));
        let half_again = i.intern(&Formula::believes_at_least(
            AgentId(0),
            a.clone(),
            Rational::from_ratio(2, 4),
        ));
        assert_ne!(half, third);
        assert_eq!(half, half_again, "equal thresholds unify (1/2 = 2/4)");
    }

    #[test]
    fn children_precede_parents() {
        let a = atom("a");
        let f = Formula::knows(AgentId(0), a.clone().not().or(a.clone()))
            .implies(a.clone())
            .eventually();
        let mut i = FormulaInterner::<SimpleState, Rational>::new();
        let root = i.intern(&f);
        assert_eq!(root.index(), i.len() - 1);
        for (id, shape) in (0..i.len()).map(|k| (SubId(k as u32), i.shape(SubId(k as u32)))) {
            let check = |c: &SubId| assert!(*c < id, "child {c:?} not before parent {id:?}");
            match shape {
                Shape::Not(x) | Shape::Eventually(x) | Shape::Always(x) | Shape::Knows(_, x) => {
                    check(x);
                }
                Shape::BelievesAtLeast(_, x, _) => check(x),
                Shape::And(x, y) | Shape::Or(x, y) | Shape::Implies(x, y) => {
                    check(x);
                    check(y);
                }
                _ => {}
            }
        }
    }
}
