//! # pak-engine — the batched epistemic query engine
//!
//! The serving layer of the workspace (ROADMAP item 1): where `pak-logic`
//! answers one formula by walking the tree per point, this crate answers
//! *many* formulas against *cached* trees:
//!
//! * [`Evaluator`] — batched bottom-up evaluation. Each distinct
//!   subformula (deduplicated by [`intern::FormulaInterner`]) gets one
//!   [`RunSet`](pak_core::event::RunSet) truth bitset per time;
//!   `K_i`/`B_i^{≥p}` are decided once per information cell instead of
//!   once per point, temporal operators by one backward pass.
//!   [`Evaluator::evaluate_batch`] shares those bitsets across a whole
//!   query batch (and across earlier queries on the same evaluator).
//! * [`PpsCache`] + [`CachedUnfolder`] — `Arc`-shared immutable
//!   [`Pps`](pak_core::pps::Pps) trees keyed by
//!   `(model fingerprint, horizon)`
//!   ([`ModelFingerprint`](pak_protocol::model::ModelFingerprint)); a
//!   miss at horizon `h + 1` grows the session's retained
//!   [`Unfolder`](pak_protocol::unfold::Unfolder) from its horizon-`h`
//!   tree instead of unfolding from scratch.
//!
//! Everything rests on the point-semantics contract stated at
//! [`Formula::eval_at`](pak_logic::Formula::eval_at): truth is defined
//! exactly at live points, uniformly absent at dead ones. The batched
//! evaluator is proved bit-identical to the naive recursive checker over
//! more than 100 seeded systems and every formula shape in
//! `tests/engine_differential.rs`.
//!
//! # Example: a query session over a cached tree
//!
//! ```
//! use pak_engine::{CachedUnfolder, Evaluator, PpsCache};
//! use pak_logic::Formula;
//! use pak_protocol::model::{CoinModel, COIN_ACT};
//! use pak_protocol::unfold::UnfoldConfig;
//! use pak_core::prelude::*;
//! use pak_num::Rational;
//!
//! let cache = PpsCache::new();
//! let model = CoinModel { heads_num: 3, heads_den: 4 };
//! let mut session = CachedUnfolder::<_, Rational>::new(&model, UnfoldConfig::default())?;
//! let tree = session.pps_at(&cache, 1)?;
//!
//! let heads = Formula::atom(StateFact::new("heads", |g: &CoinState| g.heads));
//! let mut ev = Evaluator::new(&tree);
//! let verdicts = ev.evaluate_batch(&[
//!     heads.clone(),
//!     Formula::believes_at_least(AgentId(0), heads, Rational::from_ratio(3, 4)),
//! ]);
//! assert!(!verdicts[0].valid && verdicts[0].satisfiable);
//! assert!(verdicts[1].valid); // the blind agent's prior belief is exactly 3/4
//! # use pak_protocol::model::CoinState;
//! # Ok::<(), pak_protocol::unfold::UnfoldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod eval;
pub mod intern;

pub use cache::{CacheBudget, CacheStats, CachedUnfolder, PpsCache};
pub use eval::{Cancelled, Evaluator, Verdict};
pub use intern::{FormulaInterner, SubId};
