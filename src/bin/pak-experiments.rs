//! Regenerates every paper-vs-measured table of the reproduction in one
//! fast pass (no benchmarking machinery).
//!
//! ```bash
//! cargo run --bin pak-experiments            # all experiments
//! cargo run --bin pak-experiments -- e1 e3   # a subset
//! ```
//!
//! Exits non-zero if any value disagrees with the paper.

use std::process::ExitCode;

use pak::core::prelude::*;
use pak::num::{DecimalRounding, Rational};
use pak::systems::broadcast::Broadcast;
use pak::systems::figure1;
use pak::systems::firing_squad::{FirePolicy, FiringSquad, FsSystem, ALICE, FIRE_A};
use pak::systems::judge::JudgeScenario;
use pak::systems::mutex::RelaxedMutex;
use pak::systems::policy::sweep_policies;
use pak::systems::threshold::ThresholdConstruction;

struct Report {
    failures: u32,
}

impl Report {
    fn section(&mut self, title: &str) {
        println!("\n== {title} ==");
    }

    fn row(&mut self, quantity: &str, paper: &str, measured: &str) {
        let ok = paper == measured;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {:<54} {:>14} {:>14}  {}",
            quantity,
            paper,
            measured,
            if ok { "✓" } else { "✗" }
        );
    }

    fn claim(&mut self, quantity: &str, observed: bool) {
        self.row(quantity, "true", if observed { "true" } else { "false" });
    }
}

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn e1(rep: &mut Report) {
    rep.section("E1: Example 1 — relaxed firing squad");
    let a = FiringSquad::paper().build_pps().analyze();
    rep.row(
        "µ(ϕ_both@fire_A | fire_A)",
        "99/100",
        &a.constraint_probability().to_string(),
    );
    rep.row(
        "µ(β_A ≥ 0.95 | fire_A)",
        "991/1000",
        &a.threshold_measure(&r(19, 20)).to_string(),
    );
    rep.row(
        "E[β_A@fire_A | fire_A]",
        "99/100",
        &a.expected_belief().to_string(),
    );
    let improved = FiringSquad::improved().build_pps().analyze();
    rep.row(
        "§8 improved µ",
        "990/991",
        &improved.constraint_probability().to_string(),
    );
    rep.row(
        "§8 improved µ (paper's decimals)",
        "0.99899",
        &improved
            .constraint_probability()
            .to_decimal(5, DecimalRounding::HalfUp),
    );
}

fn e2(rep: &mut Report) {
    rep.section("E2: Figure 1 — counterexamples");
    let pps = figure1::figure1::<Rational>();
    let suff =
        ActionAnalysis::new(&pps, figure1::AGENT_I, figure1::ALPHA, &figure1::psi()).unwrap();
    rep.row(
        "β_i(ψ) at α-points",
        "1/2",
        &suff.min_belief_when_acting().unwrap().to_string(),
    );
    rep.row(
        "µ(ψ@α | α)",
        "0",
        &suff.constraint_probability().to_string(),
    );
    let exp = check_expectation(&pps, figure1::AGENT_I, figure1::ALPHA, &figure1::phi()).unwrap();
    rep.row("µ(ϕ@α | α), ϕ = does(α)", "1", &exp.lhs.to_string());
    rep.row("E[β_i(ϕ)@α | α]", "1/2", &exp.rhs.to_string());
    rep.claim("equality fails without LSI", !exp.equal);
}

fn e3(rep: &mut Report) {
    rep.section("E3: Theorem 5.2 — Tˆ(p, ε)");
    for (p, e) in [(r(3, 4), r(1, 100)), (r(99, 100), r(1, 1000))] {
        let claims = ThresholdConstruction::new(p.clone(), e.clone()).verify();
        rep.row(
            &format!("µ(ϕ@α|α) in Tˆ({p}, {e})"),
            &p.to_string(),
            &claims.constraint_probability.to_string(),
        );
        rep.row(
            &format!("µ(β ≥ p | α) in Tˆ({p}, {e})"),
            &e.to_string(),
            &claims.threshold_met_measure.to_string(),
        );
    }
}

fn e5(rep: &mut Report) {
    rep.section("E5: Corollary 7.2 on Example 1");
    let sys = FiringSquad::paper().build_pps();
    let pak = check_pak_corollary(
        sys.pps(),
        ALICE,
        FIRE_A,
        &FsSystem::<Rational>::phi_both(),
        &r(1, 10),
    )
    .unwrap();
    rep.claim("premise µ ≥ 1 − ε² holds at ε = 0.1", pak.premise_holds);
    rep.row(
        "µ(β ≥ 0.9 | fire_A)",
        "991/1000",
        &pak.strong_belief_measure.to_string(),
    );
    rep.claim("conclusion ≥ 1 − ε", pak.implication_holds);
    rep.row(
        "frontier p′(0.99)",
        "0.900000",
        &format!("{:.6}", pak_frontier(0.99)),
    );
}

fn e8(rep: &mut Report) {
    rep.section("E8: relaxed mutual exclusion");
    let m = RelaxedMutex::new(r(1, 5), r(1, 20), 2);
    let a = m.analyze(AgentId(0)).unwrap();
    rep.row(
        "µ(empty@enter | enter)",
        "76/77",
        &a.constraint_probability().to_string(),
    );
    rep.row(
        "Bayes posterior (closed form)",
        &m.posterior_empty_given_free().to_string(),
        &a.constraint_probability().to_string(),
    );
}

fn e11(rep: &mut Report) {
    rep.section("E11: §8 policy ablation");
    let outcomes = sweep_policies(&FiringSquad::paper());
    rep.claim(
        "Theorem 6.2 predicts every policy's success",
        outcomes
            .iter()
            .all(pak::systems::policy::PolicyOutcome::prediction_matches),
    );
    let only_yes = FirePolicy {
        on_yes: true,
        on_no: false,
        on_nothing: false,
    };
    let best = outcomes.iter().find(|o| o.policy == only_yes).unwrap();
    rep.row(
        "success(fire only on Yes)",
        "1",
        &best.success_probability.to_string(),
    );
    let bcast = Broadcast::new(3, r(1, 10), 2);
    rep.row(
        "broadcast(3, 0.1, 2) µ(all | src)",
        "9801/10000",
        &bcast
            .build_pps()
            .unwrap()
            .analyze()
            .constraint_probability()
            .to_string(),
    );
    // Bonus: the judge's beyond-reasonable-doubt bound.
    let j = JudgeScenario::new(r(1, 2), r(9, 10), 3, 3);
    rep.row(
        "judge: µ(guilty@convict | convict), 3/3 rule",
        "729/730",
        &j.analyze().unwrap().constraint_probability().to_string(),
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k);

    let mut rep = Report { failures: 0 };
    println!("pak — paper-vs-measured experiment tables");
    println!("{}", "=".repeat(92));
    if want("e1") {
        e1(&mut rep);
    }
    if want("e2") {
        e2(&mut rep);
    }
    if want("e3") {
        e3(&mut rep);
    }
    if want("e5") {
        e5(&mut rep);
    }
    if want("e8") {
        e8(&mut rep);
    }
    if want("e11") {
        e11(&mut rep);
    }
    println!();
    if rep.failures == 0 {
        println!("all rows match the paper ✓");
        ExitCode::SUCCESS
    } else {
        println!("{} row(s) FAILED to match the paper ✗", rep.failures);
        ExitCode::FAILURE
    }
}
