//! # pak — Probably Approximately Knowing
//!
//! A Rust reproduction of *Probably Approximately Knowing* (Nitzan Zamir &
//! Yoram Moses, PODC 2020). The paper characterises the probabilistic beliefs
//! an agent must hold when it acts in order for its protocol to satisfy a
//! probabilistic constraint of the form "condition ϕ holds with probability
//! at least *p* when action α is performed".
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`num`] — exact arbitrary-precision rational arithmetic.
//! * [`core`] — purely probabilistic systems (pps), facts, beliefs,
//!   probabilistic constraints, and the paper's theorems as checkable
//!   functions.
//! * [`logic`] — an epistemic-probabilistic formula language and model
//!   checker.
//! * [`dsl`] — a textual protocol-description language (named states,
//!   per-agent move tables, guarded probabilistic transitions, adversary
//!   blocks) compiled to `protocol` table models, plus a grammar-driven
//!   program fuzzer.
//! * [`engine`] — the batched query engine: interned subformulas, per-time
//!   truth bitsets, and an `Arc`-shared tree cache keyed by
//!   `(model fingerprint, horizon)`.
//! * [`protocol`] — protocols `P_i : L_i → Δ(Act_i)`, joint protocols, the
//!   synchronous lossy-messaging substrate, and bounded-horizon unfolding
//!   into a pps.
//! * [`sim`] — Monte-Carlo simulation and statistics for cross-validating
//!   exact analyses, including the approximate formula-measure tier the
//!   server degrades to under deadline pressure.
//! * [`server`] — a fault-tolerant query service: bounded work queue with
//!   admission control, worker threads with panic isolation, per-request
//!   deadlines threaded into unfolding and evaluation, LRU cache eviction,
//!   and graceful degradation to Monte-Carlo answers.
//! * [`systems`] — the paper's concrete systems: the `FS` firing-squad
//!   protocol of Example 1, the Figure 1 counterexamples, the Theorem 5.2
//!   construction, and additional scenarios (mutual exclusion, coordinated
//!   attack, judge verdicts).
//!
//! # Quickstart
//!
//! ```
//! use pak::systems::firing_squad::FiringSquad;
//! use pak::core::prelude::*;
//! use pak::num::Rational;
//!
//! // Build Example 1's FS protocol as a purely probabilistic system.
//! let fs = FiringSquad::paper().build_pps();
//! let analysis = fs.analyze();
//!
//! // The paper: µ(both fire | Alice fires) = 0.99 ≥ 0.95.
//! assert_eq!(
//!     analysis.constraint_probability(),
//!     Rational::from_ratio(99, 100),
//! );
//! ```

pub use pak_core as core;
pub use pak_dsl as dsl;
pub use pak_engine as engine;
pub use pak_logic as logic;
pub use pak_num as num;
pub use pak_protocol as protocol;
pub use pak_server as server;
pub use pak_sim as sim;
pub use pak_systems as systems;
